package netfront

import (
	"bufio"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/hds"
	"repro/internal/kvstore"
	"repro/internal/merge"
	"repro/internal/pool"
	"repro/internal/segment"
)

// Options configure one Server. The zero value is NOT usable; start from
// DefaultOptions.
type Options struct {
	// Aggregate turns on cross-connection batch aggregation: in-flight
	// commands from every connection coalesce into per-window wave
	// operations (batch.go). Off, every command dispatches individually
	// as it arrives — the naive per-request baseline the netload
	// benchmark contrasts against.
	Aggregate bool
	// MaxBatch caps the commands one flush window aggregates.
	MaxBatch int
	// FlushWindow is how long a non-full window waits for more in-flight
	// commands before executing.
	FlushWindow time.Duration
	// PendingPerConn bounds one connection's pipelined in-flight
	// commands; the reader stalls past it (TCP backpressure).
	PendingPerConn int
	// MaxTokens bounds the cas token registry (pinned gets snapshots).
	MaxTokens int
	// ReadBuf/WriteBuf size each connection's bufio buffers.
	ReadBuf, WriteBuf int
}

// DefaultOptions is the aggregating configuration.
func DefaultOptions() Options {
	return Options{
		Aggregate:      true,
		MaxBatch:       128,
		FlushWindow:    150 * time.Microsecond,
		PendingPerConn: 256,
		MaxTokens:      4096,
		ReadBuf:        16 << 10,
		WriteBuf:       16 << 10,
	}
}

// Counters is a point-in-time snapshot of the server's protocol
// counters (the memcached-shaped subset of `stats`).
type Counters struct {
	Conns, CmdGet, CmdSet, CmdDelete, CmdCas       uint64
	GetHits, GetMisses, DeleteHits, DeleteMisses   uint64
	CasStored, CasExists, CasNotFound, BadCommands uint64
	// SnapshotErrors counts store snapshot opens that failed while serving
	// a read window; the affected ops answer SERVER_ERROR, never a silent
	// all-miss END.
	SnapshotErrors uint64
	// Batches and BatchedOps describe the aggregation loop: BatchedOps /
	// Batches is the achieved ops-per-wave coalescing factor.
	Batches, BatchedOps uint64
}

type counters struct {
	conns, cmdGet, cmdSet, cmdDelete, cmdCas       atomic.Uint64
	getHits, getMisses, deleteHits, deleteMisses   atomic.Uint64
	casStored, casExists, casNotFound, badCommands atomic.Uint64
	snapshotErrors                                 atomic.Uint64
	batches, batchedOps                            atomic.Uint64
}

func (c *counters) snapshot() Counters {
	return Counters{
		Conns: c.conns.Load(), CmdGet: c.cmdGet.Load(), CmdSet: c.cmdSet.Load(),
		CmdDelete: c.cmdDelete.Load(), CmdCas: c.cmdCas.Load(),
		GetHits: c.getHits.Load(), GetMisses: c.getMisses.Load(),
		DeleteHits: c.deleteHits.Load(), DeleteMisses: c.deleteMisses.Load(),
		CasStored: c.casStored.Load(), CasExists: c.casExists.Load(),
		CasNotFound: c.casNotFound.Load(), BadCommands: c.badCommands.Load(),
		SnapshotErrors: c.snapshotErrors.Load(),
		Batches:        c.batches.Load(), BatchedOps: c.batchedOps.Load(),
	}
}

// ErrServerClosed is returned by Serve after Close.
var ErrServerClosed = errors.New("netfront: server closed")

// Server speaks the memcached text protocol over a kvstore.HicampServer.
type Server struct {
	store *kvstore.HicampServer
	opts  Options
	toks  *tokenRegistry
	disp  *dispatcher
	c     counters

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer wraps store. With opts.Aggregate the dispatcher goroutine
// starts immediately; Close stops it.
func NewServer(store *kvstore.HicampServer, opts Options) *Server {
	def := DefaultOptions()
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = def.MaxBatch
	}
	if opts.FlushWindow <= 0 {
		opts.FlushWindow = def.FlushWindow
	}
	if opts.PendingPerConn <= 0 {
		opts.PendingPerConn = def.PendingPerConn
	}
	if opts.ReadBuf <= 0 {
		opts.ReadBuf = def.ReadBuf
	}
	if opts.WriteBuf <= 0 {
		opts.WriteBuf = def.WriteBuf
	}
	s := &Server{
		store: store,
		opts:  opts,
		toks:  newTokenRegistry(store.Heap, opts.MaxTokens),
		conns: make(map[net.Conn]struct{}),
	}
	if opts.Aggregate {
		s.disp = newDispatcher(s)
		go s.disp.run()
	}
	return s
}

// Store returns the wrapped kvstore server.
func (s *Server) Store() *kvstore.HicampServer { return s.store }

// Counters snapshots the protocol counters.
func (s *Server) Counters() Counters { return s.c.snapshot() }

// Addr returns the serving listener's address (nil before Serve).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Serve accepts connections on ln until Close. It always takes
// ownership of ln.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return ErrServerClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			return nil
		}
		s.conns[nc] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handleConn(nc)
	}
}

// ListenAndServe listens on a TCP addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Close stops accepting, closes every connection, waits for the handler
// goroutines, stops the dispatcher, and releases all pinned snapshots.
// A clean Close returns every pooled buffer: the pool leak invariant
// (hits+misses+oversize == returned) holds afterwards.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for nc := range s.conns {
		conns = append(conns, nc)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, nc := range conns {
		nc.Close()
	}
	s.wg.Wait()
	if s.disp != nil {
		close(s.disp.ch)
		<-s.disp.done
	}
	s.toks.Close()
	return nil
}

// Shared pools. Package-level (the pool registry is process-global):
// request ops, key/value arenas and response buffers all ride the same
// bucketed machinery as the wave engines' scratch.
var (
	opPool  = pool.NewItems[op]("netfront.op", resetOp)
	bufPool = pool.NewSlice[byte]("netfront.buf")
)

// Command classes for per-connection ordering (see conn.submit).
const (
	classNone  uint8 = iota
	classRead        // get/gets/mget
	classWrite       // set/delete
	classCas         // cas
)

// op is one in-flight command: the unit the dispatcher aggregates and
// the unit the connection writer orders. Request bytes are copied into
// pooled arenas (the parser's slices alias the connection read buffer,
// which moves on); responses are either static protocol literals or
// built into a pooled buffer. Ops are pooled; release returns
// everything.
type op struct {
	ready   chan struct{} // buffered(1); signaled by finish
	c       *conn         // set only for dispatcher-bound ops
	class   uint8
	verb    Op
	withCas bool // gets/mget: print cas tokens
	noreply bool
	flags   uint32
	casTok  uint64
	keys    [][]byte        // alias keybuf
	keybuf  *pool.Buf[byte] // all keys, concatenated
	val     *pool.Buf[byte] // framed set/cas payload
	respBuf *pool.Buf[byte] // backing for out when dynamic
	out     []byte          // response bytes (may be a static literal)
}

func resetOp(o *op) {
	o.c = nil
	o.class, o.verb = classNone, OpInvalid
	o.withCas, o.noreply = false, false
	o.flags, o.casTok = 0, 0
	o.keys = o.keys[:0]
	o.keybuf, o.val, o.respBuf = nil, nil, nil
	o.out = nil
}

func getOp() *op {
	o := opPool.Get()
	if o.ready == nil {
		o.ready = make(chan struct{}, 1)
	}
	return o
}

// finish publishes the op's response to the connection writer and, for
// dispatcher-bound ops, releases the connection's class barrier.
func (o *op) finish() {
	if o.c != nil {
		o.c.inflight.Done()
	}
	o.ready <- struct{}{}
}

func (o *op) release() {
	if o.keybuf != nil {
		o.keybuf.Release()
	}
	if o.val != nil {
		o.val.Release()
	}
	if o.respBuf != nil {
		o.respBuf.Release()
	}
	opPool.Put(o)
}

// grab hands the op a pooled response buffer and returns it for
// append-building; the builder assigns the result to o.out.
func (o *op) grab(sizeHint int) []byte {
	b := bufPool.GetBuf(sizeHint)
	o.respBuf = b
	return b.S[:0]
}

// Value framing: netfront persists the protocol's 32-bit flags as a
// 4-byte big-endian prefix on the stored value, so flags round-trip
// through the store without a side table. Values written through the
// in-process kvstore API have no frame and read back as flags 0.
const frameLen = 4

func unframe(v []byte) (uint32, []byte) {
	if len(v) < frameLen {
		return 0, v
	}
	return binary.BigEndian.Uint32(v), v[frameLen:]
}

// conn is one accepted connection: a reader goroutine (parse, copy,
// submit) and a writer goroutine (respond in submission order, flush
// when the pipeline drains).
type conn struct {
	s        *Server
	nc       net.Conn
	br       *bufio.Reader
	bw       *bufio.Writer
	pending  chan *op
	inflight sync.WaitGroup // dispatcher-bound ops not yet executed
}

func (s *Server) handleConn(nc net.Conn) {
	defer s.wg.Done()
	s.c.conns.Add(1)
	c := &conn{
		s:       s,
		nc:      nc,
		br:      bufio.NewReaderSize(nc, s.opts.ReadBuf),
		bw:      bufio.NewWriterSize(nc, s.opts.WriteBuf),
		pending: make(chan *op, s.opts.PendingPerConn),
	}
	s.wg.Add(1)
	go c.writeLoop()
	c.readLoop()
	close(c.pending)
}

func (c *conn) writeLoop() {
	defer c.s.wg.Done()
	for o := range c.pending {
		<-o.ready
		if !o.noreply && len(o.out) > 0 {
			c.bw.Write(o.out)
		}
		o.release()
		if len(c.pending) == 0 {
			c.bw.Flush()
		}
	}
	c.bw.Flush()
	c.nc.Close()
	// The writer is the connection's last actor: deregister only once the
	// socket is closed, so Close can still force-close a writer stuck
	// flushing, and churning connections don't grow s.conns forever.
	c.s.mu.Lock()
	delete(c.s.conns, c.nc)
	c.s.mu.Unlock()
}

var errLineTooLong = ClientError("line too long")

// readLine returns the next command line with its CRLF stripped. The
// returned slice aliases the read buffer: valid only until the next
// read.
func (c *conn) readLine() ([]byte, error) {
	line, err := c.br.ReadSlice('\n')
	if err == bufio.ErrBufferFull {
		for err == bufio.ErrBufferFull {
			_, err = c.br.ReadSlice('\n')
		}
		if err != nil {
			return nil, err
		}
		return nil, errLineTooLong
	}
	if err != nil {
		return nil, err
	}
	line = line[:len(line)-1]
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	return line, nil
}

// immediate enqueues a pre-completed response (parse errors, stats,
// version) in pipeline order without touching the dispatcher.
func (c *conn) immediate(build func(dst []byte) []byte, sizeHint int) {
	o := getOp()
	o.out = build(o.grab(sizeHint))
	o.ready <- struct{}{}
	c.pending <- o
}

// submit routes one parsed op. Aggregating servers enforce per-connection
// ordering with a class barrier: a run of same-class commands pipelines
// freely into the shared window (reads commute with reads, buffered
// writes commute with writes), but switching class waits for the
// previous run to execute — so a pipelined get issued after a set on the
// same connection always sees that set, while cross-connection order
// stays unconstrained, exactly memcached's contract. Naive servers
// execute inline, which orders trivially.
func (c *conn) submit(o *op, last *uint8) {
	if c.s.disp == nil {
		c.s.execNaive(o)
		c.pending <- o
		return
	}
	if *last != classNone && *last != o.class {
		c.inflight.Wait()
	}
	*last = o.class
	o.c = c
	c.inflight.Add(1)
	c.pending <- o
	c.s.disp.ch <- o
}

// newOp builds an op from a parsed command, copying every key into one
// pooled arena (the parse slices die with the next read).
func newOp(class uint8, cmd *Command) *op {
	o := getOp()
	o.class, o.verb, o.noreply = class, cmd.Op, cmd.Noreply
	o.flags, o.casTok = cmd.Flags, cmd.Cas
	total := 0
	for _, k := range cmd.Keys {
		total += len(k)
	}
	o.keybuf = bufPool.GetBuf(total)
	off := 0
	for _, k := range cmd.Keys {
		copy(o.keybuf.S[off:], k)
		o.keys = append(o.keys, o.keybuf.S[off:off+len(k)])
		off += len(k)
	}
	return o
}

func (c *conn) readLoop() {
	var cmd Command
	last := classNone
	for {
		line, err := c.readLine()
		if err != nil {
			var ce ClientError
			if errors.As(err, &ce) {
				c.s.c.badCommands.Add(1)
				c.immediate(func(dst []byte) []byte { return appendErrorResponse(dst, err) }, 64)
				continue
			}
			return
		}
		if len(line) == 0 {
			continue
		}
		if perr := ParseCommand(line, &cmd); perr != nil {
			// For a malformed set/cas the payload length is unknown and
			// its bytes will reparse as commands — the text protocol's
			// classic failure mode; each line answers with its own error.
			c.s.c.badCommands.Add(1)
			c.immediate(func(dst []byte) []byte { return appendErrorResponse(dst, perr) }, 64)
			continue
		}
		switch cmd.Op {
		case OpGet, OpGets, OpMGet:
			o := newOp(classRead, &cmd)
			o.withCas = cmd.Op != OpGet
			c.submit(o, &last)

		case OpSet, OpCas:
			class := uint8(classWrite)
			if cmd.Op == OpCas {
				class = classCas
			}
			o := newOp(class, &cmd) // copy the key before the payload read
			val := bufPool.GetBuf(frameLen + cmd.Bytes)
			binary.BigEndian.PutUint32(val.S, cmd.Flags)
			if _, err := io.ReadFull(c.br, val.S[frameLen:]); err != nil {
				val.Release()
				o.release()
				return
			}
			var crlf [2]byte
			if _, err := io.ReadFull(c.br, crlf[:]); err != nil {
				val.Release()
				o.release()
				return
			}
			if crlf[0] != '\r' || crlf[1] != '\n' {
				val.Release()
				o.release()
				c.s.c.badCommands.Add(1)
				c.immediate(func(dst []byte) []byte {
					return appendErrorResponse(dst, ClientError("bad data chunk"))
				}, 64)
				continue
			}
			o.val = val
			c.submit(o, &last)

		case OpDelete:
			c.submit(newOp(classWrite, &cmd), &last)

		case OpStats:
			// Barrier: this connection's committed writes must be visible
			// in the counters it reads back.
			c.inflight.Wait()
			last = classNone
			c.immediate(c.s.appendStats, 4096)

		case OpVersion:
			c.immediate(func(dst []byte) []byte {
				return append(dst, "VERSION repro-hicamp 1.0\r\n"...)
			}, 64)

		case OpQuit:
			c.inflight.Wait()
			return
		}
	}
}

// execNaive is per-request dispatch: every command runs its own store
// operation(s) the moment it is parsed — one snapshot open and one map
// descent per key, one wave commit per mutation. This is the baseline
// the aggregation loop is measured against.
func (s *Server) execNaive(o *op) {
	switch o.class {
	case classRead:
		s.c.cmdGet.Add(uint64(len(o.keys)))
		dst := o.grab(64 * (len(o.keys) + 1))
		// Even per-request dispatch keeps the protocol's snapshot
		// contract: a multi-key get/gets/mget whose keys share one
		// namespace reads every key from ONE pinned root (and that root
		// is the cas token for gets/mget). Only a cross-namespace gets
		// degrades to per-key point reads with a dead token.
		mp := s.store.NamespaceFor(o.keys[0])
		uniform := true
		for _, key := range o.keys[1:] {
			if s.store.NamespaceFor(key) != mp {
				uniform = false
				break
			}
		}
		if uniform {
			seg, size, err := mp.SnapshotEntry()
			if err != nil {
				// A failed snapshot open is a server fault, not an all-miss:
				// surface it to the client and the counters.
				s.c.snapshotErrors.Add(1)
				o.out = appendErrorResponse(dst, err)
				o.ready <- struct{}{}
				return
			}
			ks := hds.NewStrings(s.store.Heap, o.keys)
			vals, found := mp.GetManyAt(seg, ks)
			for i := range ks {
				ks[i].Release(s.store.Heap)
			}
			bss := hds.BytesMany(s.store.Heap, vals)
			var tok uint64
			if o.withCas {
				tok = s.toks.Register(mp, seg, size)
			} else {
				segment.ReleaseSeg(s.store.Heap.M, seg)
			}
			for i, key := range o.keys {
				if !found[i] {
					s.c.getMisses.Add(1)
					continue
				}
				s.c.getHits.Add(1)
				vals[i].Release(s.store.Heap)
				flags, payload := unframe(bss[i])
				dst = AppendValue(dst, key, flags, payload, tok, o.withCas)
			}
		} else {
			for _, key := range o.keys {
				v, ok := s.store.Get(key)
				if !ok {
					s.c.getMisses.Add(1)
					continue
				}
				s.c.getHits.Add(1)
				flags, payload := unframe(v)
				dst = AppendValue(dst, key, flags, payload, 0, o.withCas)
			}
		}
		o.out = append(dst, respEnd...)

	case classWrite:
		if o.verb == OpDelete {
			s.c.cmdDelete.Add(1)
			key := o.keys[0]
			if _, ok := s.store.Get(key); !ok {
				s.c.deleteMisses.Add(1)
				o.out = respNotFound
			} else if err := s.store.Delete(key); err != nil {
				o.out = appendErrorResponse(o.grab(64), err)
			} else {
				s.c.deleteHits.Add(1)
				o.out = respDeleted
			}
			break
		}
		s.c.cmdSet.Add(1)
		if err := s.store.Set(o.keys[0], o.val.S); err != nil {
			o.out = appendErrorResponse(o.grab(64), err)
		} else {
			o.out = respStored
		}

	case classCas:
		s.execCas(o)
	}
	o.ready <- struct{}{}
}

// execCas runs one compare-and-swap through the merge-rebase publish:
// the pinned snapshot the token names becomes CompareApply's base, so a
// stale token whose staleness is only *disjoint* concurrent writes
// rebases and stores, and only a concurrent write to the same key
// answers EXISTS. Shared by the naive and batched paths.
func (s *Server) execCas(o *op) {
	s.c.cmdCas.Add(1)
	key := o.keys[0]
	mp := s.store.NamespaceFor(key)
	k := hds.NewString(s.store.Heap, key)
	exists := mp.Has(k) // non-retaining probe: Get would hand us a value reference to release
	k.Release(s.store.Heap)
	if !exists {
		s.c.casNotFound.Add(1)
		o.out = respNotFound
		return
	}
	pin, ok := s.toks.Acquire(o.casTok)
	if !ok || pin.mp != mp {
		if ok {
			segment.ReleaseSeg(s.store.Heap.M, pin.seg)
		}
		// Evicted or foreign token: the version it named is gone, so the
		// conservative memcached answer is "the item changed".
		s.c.casExists.Add(1)
		o.out = respExists
		return
	}
	pairs := [1]hds.Pair{{Key: key, Value: o.val.S}}
	err := pin.mp.CompareApply(pin.seg, pin.size, pairs[:], hds.ApplyOptions{})
	segment.ReleaseSeg(s.store.Heap.M, pin.seg)
	if err == nil {
		// STORED is a durability acknowledgement like any other write's.
		err = s.store.AckDurable()
	}
	switch {
	case err == nil:
		s.c.casStored.Add(1)
		o.out = respStored
	case errors.Is(err, merge.ErrConflict):
		s.c.casExists.Add(1)
		o.out = respExists
	default:
		o.out = appendErrorResponse(o.grab(64), err)
	}
}

// appendStats renders the stats command: protocol counters, aggregation
// telemetry, core memory-system counters, segment-map conflict totals,
// per-namespace commit/conflict breakdown, and the scratch-pool leak
// ledger.
func (s *Server) appendStats(dst []byte) []byte {
	c := s.c.snapshot()
	dst = appendStat(dst, "total_connections", c.Conns)
	dst = appendStat(dst, "cmd_get", c.CmdGet)
	dst = appendStat(dst, "cmd_set", c.CmdSet)
	dst = appendStat(dst, "cmd_delete", c.CmdDelete)
	dst = appendStat(dst, "cmd_cas", c.CmdCas)
	dst = appendStat(dst, "get_hits", c.GetHits)
	dst = appendStat(dst, "get_misses", c.GetMisses)
	dst = appendStat(dst, "delete_hits", c.DeleteHits)
	dst = appendStat(dst, "delete_misses", c.DeleteMisses)
	dst = appendStat(dst, "cas_stored", c.CasStored)
	dst = appendStat(dst, "cas_exists", c.CasExists)
	dst = appendStat(dst, "cas_not_found", c.CasNotFound)
	dst = appendStat(dst, "bad_commands", c.BadCommands)
	dst = appendStat(dst, "snapshot_errors", c.SnapshotErrors)
	dst = appendStat(dst, "batches", c.Batches)
	dst = appendStat(dst, "batched_ops", c.BatchedOps)

	cs := s.store.Stats()
	dst = appendStat(dst, "hicamp_dram_accesses", cs.DRAMAccesses())
	dst = appendStat(dst, "hicamp_live_lines", s.store.Heap.M.LiveLines())

	sm := s.store.MapStats().Total
	dst = appendStat(dst, "segmap_commits", sm.Commits)
	dst = appendStat(dst, "segmap_conflicts", sm.Conflicts)

	if s.store.Durable() {
		ds := s.store.DurableStats()
		dst = appendStat(dst, "durable_appends", ds.Appends)
		dst = appendStat(dst, "durable_log_bytes", ds.LogBytes)
		dst = appendStat(dst, "durable_fsyncs", ds.Fsyncs)
		dst = appendStat(dst, "durable_group_commits", ds.GroupCommits)
		dst = appendStat(dst, "durable_checkpoints", ds.Checkpoints)
	}

	for _, ns := range s.store.NamespaceStats() {
		name := ns.Name
		if name == "" {
			name = "root"
		}
		dst = append(dst, "STAT ns_"...)
		dst = append(dst, name...)
		dst = append(dst, "_commits "...)
		dst = appendUint(dst, ns.Stats.Commits)
		dst = append(dst, respCRLF...)
		dst = append(dst, "STAT ns_"...)
		dst = append(dst, name...)
		dst = append(dst, "_conflicts "...)
		dst = appendUint(dst, ns.Stats.Conflicts)
		dst = append(dst, respCRLF...)
	}

	var ph, pm, po, pr uint64
	for _, ps := range pool.Snapshot() {
		ph += ps.Hits
		pm += ps.Misses
		po += ps.Oversize
		pr += ps.Returned
	}
	dst = appendStat(dst, "pool_hits", ph)
	dst = appendStat(dst, "pool_misses", pm)
	dst = appendStat(dst, "pool_oversize", po)
	dst = appendStat(dst, "pool_returned", pr)
	return append(dst, respEnd...)
}
