// Package netfront is the memcached-text-protocol TCP front end over
// kvstore.HicampServer — the socket tier the paper's §4.4 application
// study abstracts away, reinstated so the wave engines serve real
// pipelined connections. Its distinguishing mechanism is cross-connection
// batch aggregation: commands in flight on many connections coalesce
// into single wave operations (one snapshot + one gather per read
// window, one wave commit per write window) instead of dispatching one
// map descent per request. See server.go for the aggregation loop and
// batch.go for window execution.
package netfront

import (
	"errors"
	"fmt"
)

// Op is a parsed command verb.
type Op uint8

const (
	OpInvalid Op = iota
	OpGet        // get k1 k2 ...          -> VALUE*/END
	OpGets       // gets k1 k2 ...         -> VALUE* (with cas token)/END
	OpMGet       // mget k1 k2 ...         -> alias of gets; one snapshot
	OpSet        // set k flags exp n      -> STORED
	OpCas        // cas k flags exp n tok  -> STORED/EXISTS/NOT_FOUND
	OpDelete     // delete k               -> DELETED/NOT_FOUND
	OpStats      // stats                  -> STAT*/END
	OpVersion    // version                -> VERSION ...
	OpQuit       // quit                   -> close
)

// Protocol limits, per the memcached text protocol (and a defensive
// bound on multi-get width so one line cannot queue unbounded work).
const (
	MaxKeyLen  = 250
	MaxGetKeys = 1024
	// MaxValueLen bounds one value payload (memcached's classic 1MB).
	MaxValueLen = 1 << 20
	// MaxLineLen bounds one command line: verb + keys + numbers.
	MaxLineLen = 8192
)

// ErrUnknownCommand maps to the bare "ERROR" response.
var ErrUnknownCommand = errors.New("netfront: unknown command")

// ClientError is a malformed-but-recognized command; it maps to a
// "CLIENT_ERROR <text>" response and the connection survives.
type ClientError string

func (e ClientError) Error() string { return "netfront: client error: " + string(e) }

const (
	errBadFormat = ClientError("bad command line format")
	errBadKey    = ClientError("bad key")
	errTooMany   = ClientError("too many keys")
)

// Command is one parsed request line. All byte slices alias the input
// line — the caller owns copying them if the line buffer will be reused
// — and Keys is recycled across Reset/Parse cycles, so a Command is
// zero-allocation in steady state.
type Command struct {
	Op      Op
	Keys    [][]byte
	Flags   uint32
	Exptime int64
	Bytes   int    // value payload length (set/cas)
	Cas     uint64 // compare token (cas)
	Noreply bool
}

// Reset clears the command for reuse, keeping the Keys backing array.
func (c *Command) Reset() {
	c.Keys = c.Keys[:0]
	c.Op = OpInvalid
	c.Flags, c.Exptime, c.Bytes, c.Cas = 0, 0, 0, 0
	c.Noreply = false
}

// nextToken scans the next space-delimited token of line starting at i.
// Returns a nil token at end of line.
func nextToken(line []byte, i int) ([]byte, int) {
	for i < len(line) && line[i] == ' ' {
		i++
	}
	if i >= len(line) {
		return nil, i
	}
	start := i
	for i < len(line) && line[i] != ' ' {
		i++
	}
	return line[start:i], i
}

// parseUint is a zero-allocation strconv.ParseUint(tok, 10, 64).
func parseUint(tok []byte) (uint64, bool) {
	if len(tok) == 0 || len(tok) > 20 {
		return 0, false
	}
	var n uint64
	for _, ch := range tok {
		if ch < '0' || ch > '9' {
			return 0, false
		}
		d := uint64(ch - '0')
		if n > (1<<64-1-d)/10 {
			return 0, false
		}
		n = n*10 + d
	}
	return n, true
}

// parseInt allows one leading '-' (memcached exptime can be negative).
func parseInt(tok []byte) (int64, bool) {
	neg := false
	if len(tok) > 0 && tok[0] == '-' {
		neg, tok = true, tok[1:]
	}
	n, ok := parseUint(tok)
	if !ok || n > 1<<62 {
		return 0, false
	}
	if neg {
		return -int64(n), true
	}
	return int64(n), true
}

// validKey enforces memcached key rules: 1..MaxKeyLen bytes, no
// whitespace or control characters. (Spaces cannot appear — the
// tokenizer split on them — but control bytes can.)
func validKey(k []byte) bool {
	if len(k) == 0 || len(k) > MaxKeyLen {
		return false
	}
	for _, ch := range k {
		if ch <= ' ' || ch == 0x7f {
			return false
		}
	}
	return true
}

// verbOp decodes the command verb without allocating.
func verbOp(v []byte) Op {
	switch string(v) { // compiler-recognized: no allocation
	case "get":
		return OpGet
	case "gets":
		return OpGets
	case "mget":
		return OpMGet
	case "set":
		return OpSet
	case "cas":
		return OpCas
	case "delete":
		return OpDelete
	case "stats":
		return OpStats
	case "version":
		return OpVersion
	case "quit":
		return OpQuit
	}
	return OpInvalid
}

// ParseCommand parses one command line (CRLF already stripped) into cmd.
// cmd's slices alias line. A non-nil error is either ErrUnknownCommand
// ("ERROR" response) or a ClientError ("CLIENT_ERROR ..." response);
// both leave the connection usable.
func ParseCommand(line []byte, cmd *Command) error {
	cmd.Reset()
	if len(line) > MaxLineLen {
		return errBadFormat
	}
	verb, i := nextToken(line, 0)
	if verb == nil {
		return ErrUnknownCommand
	}
	op := verbOp(verb)
	cmd.Op = op
	switch op {
	case OpGet, OpGets, OpMGet:
		for {
			var k []byte
			k, i = nextToken(line, i)
			if k == nil {
				break
			}
			if !validKey(k) {
				return errBadKey
			}
			if len(cmd.Keys) >= MaxGetKeys {
				return errTooMany
			}
			cmd.Keys = append(cmd.Keys, k)
		}
		if len(cmd.Keys) == 0 {
			return errBadFormat
		}
		return nil

	case OpSet, OpCas:
		k, j := nextToken(line, i)
		flags, j2 := nextToken(line, j)
		exp, j3 := nextToken(line, j2)
		n, j4 := nextToken(line, j3)
		i = j4
		if !validKey(k) {
			return errBadKey
		}
		f, ok1 := parseUint(flags)
		e, ok2 := parseInt(exp)
		b, ok3 := parseUint(n)
		if !ok1 || !ok2 || !ok3 || f > 1<<32-1 || b > MaxValueLen {
			return errBadFormat
		}
		cmd.Keys = append(cmd.Keys, k)
		cmd.Flags, cmd.Exptime, cmd.Bytes = uint32(f), e, int(b)
		if op == OpCas {
			tok, j5 := nextToken(line, i)
			i = j5
			c, ok := parseUint(tok)
			if !ok {
				return errBadFormat
			}
			cmd.Cas = c
		}
		return parseTrailer(line, i, cmd)

	case OpDelete:
		k, j := nextToken(line, i)
		i = j
		if !validKey(k) {
			return errBadKey
		}
		cmd.Keys = append(cmd.Keys, k)
		return parseTrailer(line, i, cmd)

	case OpStats, OpVersion, OpQuit:
		if tok, _ := nextToken(line, i); tok != nil {
			return errBadFormat
		}
		return nil
	}
	return ErrUnknownCommand
}

// parseTrailer consumes an optional "noreply" and requires end of line.
func parseTrailer(line []byte, i int, cmd *Command) error {
	tok, i := nextToken(line, i)
	if tok == nil {
		return nil
	}
	if string(tok) == "noreply" {
		cmd.Noreply = true
		if tok, _ = nextToken(line, i); tok == nil {
			return nil
		}
	}
	return errBadFormat
}

// Response fragments (text protocol).
var (
	respStored      = []byte("STORED\r\n")
	respExists      = []byte("EXISTS\r\n")
	respNotFound    = []byte("NOT_FOUND\r\n")
	respDeleted     = []byte("DELETED\r\n")
	respEnd         = []byte("END\r\n")
	respError       = []byte("ERROR\r\n")
	respCRLF        = []byte("\r\n")
	respClientError = []byte("CLIENT_ERROR ")
	respServerError = []byte("SERVER_ERROR ")
)

// appendUint is a zero-allocation strconv.AppendUint base 10.
func appendUint(dst []byte, n uint64) []byte {
	var tmp [20]byte
	i := len(tmp)
	for {
		i--
		tmp[i] = byte('0' + n%10)
		n /= 10
		if n == 0 {
			break
		}
	}
	return append(dst, tmp[i:]...)
}

// AppendValue appends one "VALUE <key> <flags> <bytes> [<cas>]\r\n<data>\r\n"
// block. withCas selects the gets/mget form.
func AppendValue(dst, key []byte, flags uint32, data []byte, cas uint64, withCas bool) []byte {
	dst = append(dst, "VALUE "...)
	dst = append(dst, key...)
	dst = append(dst, ' ')
	dst = appendUint(dst, uint64(flags))
	dst = append(dst, ' ')
	dst = appendUint(dst, uint64(len(data)))
	if withCas {
		dst = append(dst, ' ')
		dst = appendUint(dst, cas)
	}
	dst = append(dst, respCRLF...)
	dst = append(dst, data...)
	return append(dst, respCRLF...)
}

// appendErrorResponse renders a parse/exec error as its protocol line.
func appendErrorResponse(dst []byte, err error) []byte {
	var ce ClientError
	if errors.As(err, &ce) {
		dst = append(dst, respClientError...)
		dst = append(dst, string(ce)...)
		return append(dst, respCRLF...)
	}
	if errors.Is(err, ErrUnknownCommand) {
		return append(dst, respError...)
	}
	dst = append(dst, respServerError...)
	dst = append(dst, fmt.Sprintf("%v", err)...)
	return append(dst, respCRLF...)
}

// appendStat appends one "STAT <name> <value>\r\n" line.
func appendStat(dst []byte, name string, v uint64) []byte {
	dst = append(dst, "STAT "...)
	dst = append(dst, name...)
	dst = append(dst, ' ')
	dst = appendUint(dst, v)
	return append(dst, respCRLF...)
}
