package netfront

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/kvstore"
	"repro/internal/pool"
)

func testCfg() core.Config {
	return core.Config{LineBytes: 16, BucketBits: 14, DataWays: 12, CacheLines: 4096, CacheWays: 16}
}

// startServer spins up a loopback server; Close runs in cleanup.
func startServer(t testing.TB, opts Options) (*Server, string) {
	t.Helper()
	s := NewServer(kvstore.NewHicampServer(testCfg()), opts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	t.Cleanup(func() { s.Close() })
	return s, ln.Addr().String()
}

func dialOrFatal(t testing.TB, addr string) *Client {
	t.Helper()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// Both serving modes must speak identical protocol; only the dispatch
// strategy differs.
func TestLoopbackProtocol(t *testing.T) {
	for _, mode := range []struct {
		name string
		opts Options
	}{
		{"aggregate", DefaultOptions()},
		{"naive", Options{Aggregate: false}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			_, addr := startServer(t, mode.opts)
			c := dialOrFatal(t, addr)

			// Miss, then store/fetch with flags round-trip.
			if _, ok, err := c.Get("nope"); err != nil || ok {
				t.Fatalf("miss: ok=%v err=%v", ok, err)
			}
			if err := c.SendSet("k1", 42, []byte("hello"), false); err != nil {
				t.Fatal(err)
			}
			c.Flush()
			if r, _ := c.ReadReply(); r != "STORED" {
				t.Fatalf("set: %s", r)
			}
			if err := c.SendGet(false, "k1"); err != nil {
				t.Fatal(err)
			}
			c.Flush()
			vs, err := c.ReadValues()
			if err != nil || len(vs) != 1 {
				t.Fatalf("get: %v %v", vs, err)
			}
			if vs[0].Key != "k1" || vs[0].Flags != 42 || string(vs[0].Data) != "hello" {
				t.Fatalf("get = %+v", vs[0])
			}

			// noreply set is executed but unacknowledged.
			if err := c.SendSet("quiet", 0, []byte("q"), true); err != nil {
				t.Fatal(err)
			}
			// Multi-key get straight after: pipelined on the same
			// connection, so it must observe the noreply set (class
			// barrier) and keep request key order in the response.
			c.SendGet(false, "k1", "quiet", "nope")
			c.Flush()
			vs, err = c.ReadValues()
			if err != nil || len(vs) != 2 {
				t.Fatalf("multiget: %v %v", vs, err)
			}
			if vs[0].Key != "k1" || vs[1].Key != "quiet" || string(vs[1].Data) != "q" {
				t.Fatalf("multiget = %+v", vs)
			}

			// Namespaced keys route to tenant maps transparently.
			if err := c.Set("acme/nk", []byte("nv")); err != nil {
				t.Fatal(err)
			}
			if v, ok, _ := c.Get("acme/nk"); !ok || string(v) != "nv" {
				t.Fatalf("tenant get = %q %v", v, ok)
			}

			// Delete semantics.
			if ok, _ := c.Delete("k1"); !ok {
				t.Fatal("delete k1: want DELETED")
			}
			if ok, _ := c.Delete("k1"); ok {
				t.Fatal("delete k1 again: want NOT_FOUND")
			}
			if _, ok, _ := c.Get("k1"); ok {
				t.Fatal("k1 survived delete")
			}

			// Errors keep the connection usable.
			c.bw.WriteString("bogus\r\n")
			c.Flush()
			if r, _ := c.ReadReply(); r != "ERROR" {
				t.Fatalf("bogus: %s", r)
			}
			c.bw.WriteString("get \x01bad\r\n")
			c.Flush()
			if r, _ := c.ReadReply(); r != "CLIENT_ERROR bad key" {
				t.Fatalf("bad key: %s", r)
			}

			if v, err := c.Version(); err != nil || v == "" {
				t.Fatalf("version: %q %v", v, err)
			}
			st, err := c.Stats()
			if err != nil {
				t.Fatal(err)
			}
			if st["cmd_set"] == 0 || st["get_hits"] == 0 {
				t.Fatalf("stats missing counters: %v", st)
			}
		})
	}
}

// The acceptance pin: a cas whose token (pinned snapshot) went stale to
// DISJOINT concurrent writes still stores, by rebasing through the
// three-way merge — while a concurrent write to the same key answers
// EXISTS, and a vanished key answers NOT_FOUND.
func TestCasMergeRebase(t *testing.T) {
	for _, mode := range []struct {
		name string
		opts Options
	}{
		{"aggregate", DefaultOptions()},
		{"naive", Options{Aggregate: false}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			_, addr := startServer(t, mode.opts)
			c := dialOrFatal(t, addr)
			other := dialOrFatal(t, addr)

			for _, k := range []string{"mine", "theirs", "gone"} {
				if err := c.Set(k, []byte(k+"-v0")); err != nil {
					t.Fatal(err)
				}
			}
			v, ok, err := c.Gets("mine")
			if err != nil || !ok || v.Cas == 0 {
				t.Fatalf("gets: %+v %v %v", v, ok, err)
			}

			// Another connection moves the map under the token: writes to
			// DIFFERENT keys.
			if err := other.Set("theirs", []byte("theirs-v1")); err != nil {
				t.Fatal(err)
			}
			if _, err := other.Delete("gone"); err != nil {
				t.Fatal(err)
			}

			// Stale token + disjoint interleaved writes: merge-rebase
			// publishes instead of failing.
			if r, err := c.Cas("mine", []byte("mine-v1"), v.Cas); err != nil || r != "STORED" {
				t.Fatalf("disjoint stale cas = %q %v, want STORED", r, err)
			}
			if got, _, _ := c.Get("mine"); string(got) != "mine-v1" {
				t.Fatalf("mine = %q", got)
			}
			if got, _, _ := c.Get("theirs"); string(got) != "theirs-v1" {
				t.Fatalf("theirs = %q (interleaved write lost)", got)
			}

			// Same-key interleaved write: true conflict, EXISTS.
			v2, _, _ := c.Gets("mine")
			if err := other.Set("mine", []byte("mine-v2")); err != nil {
				t.Fatal(err)
			}
			if r, _ := c.Cas("mine", []byte("mine-v2-mine"), v2.Cas); r != "EXISTS" {
				t.Fatalf("same-key stale cas = %q, want EXISTS", r)
			}
			if got, _, _ := c.Get("mine"); string(got) != "mine-v2" {
				t.Fatalf("mine = %q (conflicting cas landed)", got)
			}

			// Missing key: NOT_FOUND regardless of token.
			v3, _, _ := c.Gets("theirs")
			if _, err := other.Delete("theirs"); err != nil {
				t.Fatal(err)
			}
			if r, _ := c.Cas("theirs", []byte("x"), v3.Cas); r != "NOT_FOUND" {
				t.Fatalf("cas on deleted key = %q, want NOT_FOUND", r)
			}

			// Garbage token on a live key: EXISTS.
			if err := c.Set("alive", []byte("a")); err != nil {
				t.Fatal(err)
			}
			if r, _ := c.Cas("alive", []byte("b"), 1<<60); r != "EXISTS" {
				t.Fatalf("garbage token cas = %q, want EXISTS", r)
			}
		})
	}
}

// Pipelined loopback stress under the race detector: concurrent
// connections hammer mixed workloads while a writer publishes paired
// keys atomically (one Apply commit); every mget must observe the pair
// from ONE version — the snapshot-consistency pin. Run with
// -race -cpu=1,4 in CI.
func TestStressSnapshotConsistentMGet(t *testing.T) {
	s, addr := startServer(t, Options{
		Aggregate:   true,
		MaxBatch:    64,
		FlushWindow: 100 * time.Microsecond,
	})

	// Paired keys, flipped atomically by in-process bulk commits.
	store := s.Store()
	pairKeys := []string{"pair/a", "pair/b"}
	set := func(gen int) {
		v := []byte(fmt.Sprintf("gen-%06d", gen))
		if err := store.Write(kvstore.Batch{}.Set([]byte(pairKeys[0]), v).Set([]byte(pairKeys[1]), v)); err != nil {
			t.Error(err)
		}
	}
	set(0)

	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for gen := 1; !stop.Load(); gen++ {
			set(gen)
			// Throttle: keep flipping versions under the readers without
			// starving single-CPU runs of the serving goroutines.
			time.Sleep(200 * time.Microsecond)
		}
	}()

	const conns = 6
	errs := make(chan error, conns)
	for w := 0; w < conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < 150; i++ {
				// Private churn to fill aggregation windows.
				key := fmt.Sprintf("w%d-k%d", w, i%7)
				if err := c.SendSet(key, 0, []byte(fmt.Sprintf("v%d", i)), false); err != nil {
					errs <- err
					return
				}
				c.SendMGet("pair/a", "pair/b")
				if err := c.Flush(); err != nil {
					errs <- err
					return
				}
				if r, err := c.ReadReply(); err != nil || r != "STORED" {
					errs <- fmt.Errorf("worker %d set: %q %v", w, r, err)
					return
				}
				vs, err := c.ReadValues()
				if err != nil || len(vs) != 2 {
					errs <- fmt.Errorf("worker %d mget: %v %v", w, vs, err)
					return
				}
				if string(vs[0].Data) != string(vs[1].Data) {
					errs <- fmt.Errorf("worker %d torn mget: %q vs %q", w, vs[0].Data, vs[1].Data)
					return
				}
				if vs[0].Cas != vs[1].Cas || vs[0].Cas == 0 {
					errs <- fmt.Errorf("worker %d mget tokens differ: %d vs %d", w, vs[0].Cas, vs[1].Cas)
					return
				}
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < conns; w++ {
		if err := <-errs; err != nil {
			t.Error(err)
		}
	}
	stop.Store(true)
	wg.Wait()

	if c := s.Counters(); c.Batches == 0 || c.BatchedOps < c.Batches {
		t.Fatalf("aggregation loop never batched: %+v", c)
	}
}

// Clean shutdown returns every pooled buffer: for all netfront pools,
// acquisitions (hits+misses+oversize) equal returns — the leak pin the
// CI smoke stage also asserts end-to-end.
func TestShutdownPoolLeakPin(t *testing.T) {
	s, addr := startServer(t, DefaultOptions())
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("t%d/k%d", w, i)
				if err := c.Set(key, []byte("v")); err != nil {
					t.Error(err)
					return
				}
				if _, ok, err := c.Get(key); !ok || err != nil {
					t.Errorf("get %s: %v %v", key, ok, err)
					return
				}
				if i%5 == 0 {
					if _, _, err := c.Gets(key); err != nil {
						t.Error(err)
						return
					}
				}
				if i%7 == 0 {
					if _, err := c.Delete(key); err != nil {
						t.Error(err)
						return
					}
				}
			}
			c.Quit()
		}(w)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for _, ps := range pool.Snapshot() {
		if len(ps.Name) < 9 || ps.Name[:9] != "netfront." {
			continue
		}
		if got, want := ps.Hits+ps.Misses+ps.Oversize, ps.Returned; got != want {
			t.Errorf("pool %s leaked: acquired %d, returned %d", ps.Name, got, want)
		}
	}
}

// The cas existence probe must not retain the value: after gets→cas
// churn with a distinct payload per round, deleting the key and closing
// the server (draining the token registry's snapshot pins) must reclaim
// every value's lines. A leaked reference per cas would pin ~30 dead
// 512-byte values — thousands of lines — forever.
func TestCasDoesNotLeakValueRefs(t *testing.T) {
	s, addr := startServer(t, Options{Aggregate: false})
	heap := s.Store().Heap
	base := heap.M.LiveLines()
	c := dialOrFatal(t, addr)

	val := make([]byte, 512)
	for i := 0; i < 30; i++ {
		for j := range val {
			val[j] = byte(i + j)
		}
		if i == 0 {
			if err := c.Set("leak", val); err != nil {
				t.Fatal(err)
			}
			continue
		}
		v, ok, err := c.Gets("leak")
		if err != nil || !ok {
			t.Fatalf("gets round %d: ok=%v err=%v", i, ok, err)
		}
		if r, err := c.Cas("leak", val, v.Cas); err != nil || r != "STORED" {
			t.Fatalf("cas round %d: %q %v", i, r, err)
		}
	}
	if _, err := c.Delete("leak"); err != nil {
		t.Fatal(err)
	}
	c.Quit()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if end := heap.M.LiveLines(); end > base+256 {
		t.Fatalf("value lines leaked: live lines %d → %d", base, end)
	}
}

// Finished connections deregister themselves: connection churn must not
// grow the server's conn table (or a later Close would re-close
// thousands of dead sockets).
func TestConnChurnPrunesRegistry(t *testing.T) {
	s, addr := startServer(t, DefaultOptions())
	for i := 0; i < 16; i++ {
		c, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Set("k", []byte("v")); err != nil {
			t.Fatal(err)
		}
		c.Quit()
		c.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.mu.Lock()
		n := len(s.conns)
		s.mu.Unlock()
		if n == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d dead connections still registered", n)
		}
		time.Sleep(time.Millisecond)
	}
}

// Closing the server with connections mid-flight must not hang.
func TestCloseWithLiveConns(t *testing.T) {
	s, addr := startServer(t, DefaultOptions())
	c := dialOrFatal(t, addr)
	if err := c.Set("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		s.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close hung with a live connection")
	}
}
