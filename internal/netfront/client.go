package netfront

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
)

// Client is a minimal memcached text-protocol client with an explicit
// pipelining surface: Send* methods buffer requests, Flush pushes them,
// and Read* methods consume responses in order. The load driver keeps
// dozens of requests in flight per connection this way — which is
// exactly what gives the server's aggregation loop something to
// coalesce. The convenience methods (Get/Set/...) are one-shot
// send+flush+read.
type Client struct {
	nc net.Conn
	br *bufio.Reader
	bw *bufio.Writer
}

// Dial connects to a netfront server (or any memcached).
func Dial(addr string) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{
		nc: nc,
		br: bufio.NewReaderSize(nc, 64<<10),
		bw: bufio.NewWriterSize(nc, 64<<10),
	}, nil
}

func (c *Client) Close() error { return c.nc.Close() }

// Flush pushes all buffered requests to the server.
func (c *Client) Flush() error { return c.bw.Flush() }

// SendGet buffers "get(s) k1 k2 ...".
func (c *Client) SendGet(withCas bool, keys ...string) error {
	verb := "get"
	if withCas {
		verb = "gets"
	}
	c.bw.WriteString(verb)
	for _, k := range keys {
		c.bw.WriteByte(' ')
		c.bw.WriteString(k)
	}
	_, err := c.bw.WriteString("\r\n")
	return err
}

// SendMGet buffers a snapshot-consistent multi-get ("mget k1 k2 ...").
func (c *Client) SendMGet(keys ...string) error {
	c.bw.WriteString("mget")
	for _, k := range keys {
		c.bw.WriteByte(' ')
		c.bw.WriteString(k)
	}
	_, err := c.bw.WriteString("\r\n")
	return err
}

// SendSet buffers "set key flags 0 n [noreply]" + payload.
func (c *Client) SendSet(key string, flags uint32, value []byte, noreply bool) error {
	fmt.Fprintf(c.bw, "set %s %d 0 %d", key, flags, len(value))
	if noreply {
		c.bw.WriteString(" noreply")
	}
	c.bw.WriteString("\r\n")
	c.bw.Write(value)
	_, err := c.bw.WriteString("\r\n")
	return err
}

// SendCas buffers "cas key flags 0 n tok" + payload.
func (c *Client) SendCas(key string, flags uint32, value []byte, cas uint64) error {
	fmt.Fprintf(c.bw, "cas %s %d 0 %d %d\r\n", key, flags, len(value), cas)
	c.bw.Write(value)
	_, err := c.bw.WriteString("\r\n")
	return err
}

// SendDelete buffers "delete key [noreply]".
func (c *Client) SendDelete(key string, noreply bool) error {
	c.bw.WriteString("delete ")
	c.bw.WriteString(key)
	if noreply {
		c.bw.WriteString(" noreply")
	}
	_, err := c.bw.WriteString("\r\n")
	return err
}

// Value is one VALUE block of a get/gets/mget response.
type Value struct {
	Key   string
	Flags uint32
	Cas   uint64
	Data  []byte
}

func (c *Client) readLine() ([]byte, error) {
	line, err := c.br.ReadBytes('\n')
	if err != nil {
		return nil, err
	}
	return bytes.TrimRight(line, "\r\n"), nil
}

// ReadValues consumes one get/gets/mget response (VALUE blocks through
// END). The returned data slices are owned by the caller.
func (c *Client) ReadValues() ([]Value, error) {
	var out []Value
	for {
		line, err := c.readLine()
		if err != nil {
			return nil, err
		}
		if bytes.Equal(line, []byte("END")) {
			return out, nil
		}
		f := strings.Fields(string(line))
		if len(f) < 4 || f[0] != "VALUE" {
			return nil, fmt.Errorf("netfront client: unexpected line %q", line)
		}
		flags, err1 := strconv.ParseUint(f[2], 10, 32)
		n, err2 := strconv.ParseUint(f[3], 10, 31)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("netfront client: bad VALUE line %q", line)
		}
		v := Value{Key: f[1], Flags: uint32(flags)}
		if len(f) >= 5 {
			cas, err := strconv.ParseUint(f[4], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("netfront client: bad cas in %q", line)
			}
			v.Cas = cas
		}
		v.Data = make([]byte, n+2)
		if _, err := readFullBuf(c.br, v.Data); err != nil {
			return nil, err
		}
		if !bytes.HasSuffix(v.Data, []byte("\r\n")) {
			return nil, errors.New("netfront client: bad data trailer")
		}
		v.Data = v.Data[:n]
		out = append(out, v)
	}
}

func readFullBuf(br *bufio.Reader, p []byte) (int, error) {
	n := 0
	for n < len(p) {
		m, err := br.Read(p[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// ReadReply consumes one status line (STORED, DELETED, ...).
func (c *Client) ReadReply() (string, error) {
	line, err := c.readLine()
	return string(line), err
}

// Get fetches one key (send+flush+read).
func (c *Client) Get(key string) ([]byte, bool, error) {
	if err := c.SendGet(false, key); err != nil {
		return nil, false, err
	}
	if err := c.Flush(); err != nil {
		return nil, false, err
	}
	vs, err := c.ReadValues()
	if err != nil || len(vs) == 0 {
		return nil, false, err
	}
	return vs[0].Data, true, nil
}

// Gets fetches one key with its cas token.
func (c *Client) Gets(key string) (Value, bool, error) {
	if err := c.SendGet(true, key); err != nil {
		return Value{}, false, err
	}
	if err := c.Flush(); err != nil {
		return Value{}, false, err
	}
	vs, err := c.ReadValues()
	if err != nil || len(vs) == 0 {
		return Value{}, false, err
	}
	return vs[0], true, nil
}

// Set stores one key and waits for STORED.
func (c *Client) Set(key string, value []byte) error {
	if err := c.SendSet(key, 0, value, false); err != nil {
		return err
	}
	if err := c.Flush(); err != nil {
		return err
	}
	r, err := c.ReadReply()
	if err != nil {
		return err
	}
	if r != "STORED" {
		return fmt.Errorf("netfront client: set: %s", r)
	}
	return nil
}

// Cas attempts a compare-and-swap and returns the status line
// (STORED/EXISTS/NOT_FOUND).
func (c *Client) Cas(key string, value []byte, cas uint64) (string, error) {
	if err := c.SendCas(key, 0, value, cas); err != nil {
		return "", err
	}
	if err := c.Flush(); err != nil {
		return "", err
	}
	return c.ReadReply()
}

// Delete removes one key; reports whether it existed.
func (c *Client) Delete(key string) (bool, error) {
	if err := c.SendDelete(key, false); err != nil {
		return false, err
	}
	if err := c.Flush(); err != nil {
		return false, err
	}
	r, err := c.ReadReply()
	if err != nil {
		return false, err
	}
	switch r {
	case "DELETED":
		return true, nil
	case "NOT_FOUND":
		return false, nil
	}
	return false, fmt.Errorf("netfront client: delete: %s", r)
}

// Stats fetches the stats table.
func (c *Client) Stats() (map[string]uint64, error) {
	if _, err := c.bw.WriteString("stats\r\n"); err != nil {
		return nil, err
	}
	if err := c.Flush(); err != nil {
		return nil, err
	}
	out := map[string]uint64{}
	for {
		line, err := c.readLine()
		if err != nil {
			return nil, err
		}
		if bytes.Equal(line, []byte("END")) {
			return out, nil
		}
		f := strings.Fields(string(line))
		if len(f) != 3 || f[0] != "STAT" {
			return nil, fmt.Errorf("netfront client: bad stat line %q", line)
		}
		n, err := strconv.ParseUint(f[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("netfront client: bad stat value %q", line)
		}
		out[f[1]] = n
	}
}

// Version fetches the server version line.
func (c *Client) Version() (string, error) {
	if _, err := c.bw.WriteString("version\r\n"); err != nil {
		return "", err
	}
	if err := c.Flush(); err != nil {
		return "", err
	}
	return c.ReadReply()
}

// Quit sends quit and closes the connection.
func (c *Client) Quit() error {
	c.bw.WriteString("quit\r\n")
	c.bw.Flush()
	return c.nc.Close()
}
