package netfront

import (
	"bytes"
	"errors"
	"testing"
)

func TestParseCommandTable(t *testing.T) {
	cases := []struct {
		name string
		line string
		want Command
		err  error
	}{
		{
			name: "get single",
			line: "get foo",
			want: Command{Op: OpGet, Keys: [][]byte{[]byte("foo")}},
		},
		{
			name: "get multi",
			line: "get a b  c",
			want: Command{Op: OpGet, Keys: [][]byte{[]byte("a"), []byte("b"), []byte("c")}},
		},
		{
			name: "gets",
			line: "gets k1 k2",
			want: Command{Op: OpGets, Keys: [][]byte{[]byte("k1"), []byte("k2")}},
		},
		{
			name: "mget",
			line: "mget t/a t/b",
			want: Command{Op: OpMGet, Keys: [][]byte{[]byte("t/a"), []byte("t/b")}},
		},
		{
			name: "set",
			line: "set foo 42 0 5",
			want: Command{Op: OpSet, Keys: [][]byte{[]byte("foo")}, Flags: 42, Bytes: 5},
		},
		{
			name: "set noreply",
			line: "set foo 0 0 3 noreply",
			want: Command{Op: OpSet, Keys: [][]byte{[]byte("foo")}, Bytes: 3, Noreply: true},
		},
		{
			name: "set negative exptime",
			line: "set foo 0 -1 3",
			want: Command{Op: OpSet, Keys: [][]byte{[]byte("foo")}, Exptime: -1, Bytes: 3},
		},
		{
			name: "cas",
			line: "cas foo 7 0 4 99",
			want: Command{Op: OpCas, Keys: [][]byte{[]byte("foo")}, Flags: 7, Bytes: 4, Cas: 99},
		},
		{
			name: "cas noreply",
			line: "cas foo 0 0 1 12 noreply",
			want: Command{Op: OpCas, Keys: [][]byte{[]byte("foo")}, Bytes: 1, Cas: 12, Noreply: true},
		},
		{
			name: "delete",
			line: "delete foo",
			want: Command{Op: OpDelete, Keys: [][]byte{[]byte("foo")}},
		},
		{
			name: "delete noreply",
			line: "delete foo noreply",
			want: Command{Op: OpDelete, Keys: [][]byte{[]byte("foo")}, Noreply: true},
		},
		{name: "stats", line: "stats", want: Command{Op: OpStats}},
		{name: "version", line: "version", want: Command{Op: OpVersion}},
		{name: "quit", line: "quit", want: Command{Op: OpQuit}},

		{name: "empty", line: "", err: ErrUnknownCommand},
		{name: "unknown verb", line: "frobnicate x", err: ErrUnknownCommand},
		{name: "get no keys", line: "get", err: errBadFormat},
		{name: "get key too long", line: "get " + string(bytes.Repeat([]byte("k"), 251)), err: errBadKey},
		{name: "get control byte key", line: "get a\x01b", err: errBadKey},
		{name: "set missing bytes", line: "set foo 0 0", err: errBadFormat},
		{name: "set bad flags", line: "set foo x 0 3", err: errBadFormat},
		{name: "set bad bytes", line: "set foo 0 0 x", err: errBadFormat},
		{name: "set oversize bytes", line: "set foo 0 0 1048577", err: errBadFormat},
		{name: "set trailing junk", line: "set foo 0 0 3 zzz", err: errBadFormat},
		{name: "set junk after noreply", line: "set foo 0 0 3 noreply zzz", err: errBadFormat},
		{name: "cas missing token", line: "cas foo 0 0 3", err: errBadFormat},
		{name: "cas bad token", line: "cas foo 0 0 3 x", err: errBadFormat},
		{name: "delete missing key", line: "delete", err: errBadKey},
		{name: "delete trailing junk", line: "delete foo bar", err: errBadFormat},
		{name: "stats with args", line: "stats items", err: errBadFormat},
		{name: "flags overflow", line: "set foo 4294967296 0 3", err: errBadFormat},
		{name: "uint overflow", line: "set foo 99999999999999999999999 0 3", err: errBadFormat},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var cmd Command
			err := ParseCommand([]byte(tc.line), &cmd)
			if tc.err != nil {
				if !errors.Is(err, tc.err) {
					t.Fatalf("ParseCommand(%q) err = %v, want %v", tc.line, err, tc.err)
				}
				return
			}
			if err != nil {
				t.Fatalf("ParseCommand(%q): %v", tc.line, err)
			}
			if cmd.Op != tc.want.Op || cmd.Flags != tc.want.Flags ||
				cmd.Exptime != tc.want.Exptime || cmd.Bytes != tc.want.Bytes ||
				cmd.Cas != tc.want.Cas || cmd.Noreply != tc.want.Noreply {
				t.Fatalf("ParseCommand(%q) = %+v, want %+v", tc.line, cmd, tc.want)
			}
			if len(cmd.Keys) != len(tc.want.Keys) {
				t.Fatalf("ParseCommand(%q) keys = %q, want %q", tc.line, cmd.Keys, tc.want.Keys)
			}
			for i := range cmd.Keys {
				if !bytes.Equal(cmd.Keys[i], tc.want.Keys[i]) {
					t.Fatalf("ParseCommand(%q) key[%d] = %q, want %q", tc.line, i, cmd.Keys[i], tc.want.Keys[i])
				}
			}
		})
	}
}

// The Command is reused across parses: a successful parse must fully
// overwrite the previous command's state.
func TestParseCommandReuse(t *testing.T) {
	var cmd Command
	if err := ParseCommand([]byte("cas foo 7 0 4 99 noreply"), &cmd); err != nil {
		t.Fatal(err)
	}
	if err := ParseCommand([]byte("get a b"), &cmd); err != nil {
		t.Fatal(err)
	}
	if cmd.Op != OpGet || len(cmd.Keys) != 2 || cmd.Flags != 0 || cmd.Cas != 0 || cmd.Noreply {
		t.Fatalf("reused command carried stale state: %+v", cmd)
	}
}

func TestParseTooManyKeys(t *testing.T) {
	line := []byte("get")
	for i := 0; i <= MaxGetKeys; i++ {
		line = append(line, " k"...)
	}
	var cmd Command
	if err := ParseCommand(line, &cmd); !errors.Is(err, errTooMany) {
		t.Fatalf("err = %v, want %v", err, errTooMany)
	}
}

// FuzzParseCommand pins the parser against panics and invariant
// violations on arbitrary input.
func FuzzParseCommand(f *testing.F) {
	seeds := []string{
		"get foo", "gets a b c", "mget x", "set k 1 0 5", "set k 1 0 5 noreply",
		"cas k 0 0 3 77", "delete k", "delete k noreply", "stats", "version",
		"quit", "", "get", "set k", "set k 0 0 99999999999999999999",
		"get \x00", "cas k 0 0 3", "bogus", " get foo", "set k -1 0 3",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, line []byte) {
		var cmd Command
		err := ParseCommand(line, &cmd)
		if err != nil {
			return
		}
		// Invariants on every accepted command.
		switch cmd.Op {
		case OpGet, OpGets, OpMGet:
			if len(cmd.Keys) == 0 || len(cmd.Keys) > MaxGetKeys {
				t.Fatalf("accepted get with %d keys", len(cmd.Keys))
			}
		case OpSet, OpCas, OpDelete:
			if len(cmd.Keys) != 1 {
				t.Fatalf("accepted %v with %d keys", cmd.Op, len(cmd.Keys))
			}
		case OpStats, OpVersion, OpQuit:
			if len(cmd.Keys) != 0 {
				t.Fatalf("accepted %v with keys", cmd.Op)
			}
		default:
			t.Fatalf("accepted invalid op %v", cmd.Op)
		}
		for _, k := range cmd.Keys {
			if !validKey(k) {
				t.Fatalf("accepted invalid key %q", k)
			}
		}
		if cmd.Bytes < 0 || cmd.Bytes > MaxValueLen {
			t.Fatalf("accepted bytes %d", cmd.Bytes)
		}
	})
}
