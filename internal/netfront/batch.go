package netfront

import (
	"time"

	"repro/internal/hds"
	"repro/internal/segment"
)

// The aggregation loop. Every connection reader feeds parsed ops into
// one shared channel; the dispatcher collects them into bounded flush
// windows (up to MaxBatch ops, waiting at most FlushWindow for
// stragglers) and executes each window as a handful of wave operations
// instead of one store operation per request:
//
//   - all reads in the window, across every connection, resolve per
//     namespace through ONE pinned snapshot + ONE level-order gather
//     (Map.GetManyAt) + ONE bulk materialization — the map's root path
//     and interior lines shared between the window's keys are fetched
//     once per wave, not once per request;
//   - all sets and deletes in the window coalesce per namespace into ONE
//     Apply batch — one bottom-up wave commit publishing one version for
//     the whole window, with tombstones riding the same commit;
//   - cas ops run individually through the merge-rebase publish
//     (execCas), after the window's writes.
//
// Execution order within a window is reads, then writes, then cas: the
// window's reads see the pre-window version (they pinned it), its writes
// publish after. Per-connection ordering across classes is enforced
// upstream by the submit barrier, and cross-connection ordering is
// unspecified by the protocol — so this reordering is invisible to any
// single connection.
type dispatcher struct {
	s    *Server
	ch   chan *op
	done chan struct{}

	// Reused window scratch (the dispatcher is a single goroutine).
	batch  []*op
	reads  []*op
	writes []*op
	cass   []*op
	groups map[*hds.Map]*windowGroup
	order  []*windowGroup
	free   []*windowGroup
}

func newDispatcher(s *Server) *dispatcher {
	return &dispatcher{
		s:      s,
		ch:     make(chan *op, 4*s.opts.MaxBatch),
		done:   make(chan struct{}),
		groups: make(map[*hds.Map]*windowGroup),
	}
}

// windowGroup is one namespace's share of a flush window: the read keys
// and write pairs routed to one hds.Map, with cursors for scattering
// results back to ops in arrival order.
type windowGroup struct {
	mp *hds.Map

	// Read side. vals aliases valflat; both are retained across windows
	// so steady-state materialization reuses their storage.
	rkeys   [][]byte
	ks      []hds.String
	vstrs   []hds.String
	vals    [][]byte
	valflat []byte
	found   []bool
	tok     uint64
	rerr    error // snapshot open failed; the group's reads answer SERVER_ERROR
	rcur    int

	// Write side.
	pairs   []hds.Pair
	delKeys [][]byte
	dfound  []bool
	werr    error
	dcur    int
}

func (g *windowGroup) reset() {
	g.mp = nil
	g.rkeys, g.ks, g.vstrs, g.vals = g.rkeys[:0], g.ks[:0], g.vstrs[:0], g.vals[:0]
	g.found = g.found[:0]
	g.tok, g.rerr, g.rcur = 0, nil, 0
	g.pairs, g.delKeys = g.pairs[:0], g.delKeys[:0]
	g.dfound, g.werr, g.dcur = g.dfound[:0], nil, 0
}

func (d *dispatcher) run() {
	defer close(d.done)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		o, ok := <-d.ch
		if !ok {
			return
		}
		d.batch = append(d.batch[:0], o)
		timer.Reset(d.s.opts.FlushWindow)
		fired := false
	collect:
		for len(d.batch) < d.s.opts.MaxBatch {
			select {
			case o2, ok2 := <-d.ch:
				if !ok2 {
					break collect
				}
				d.batch = append(d.batch, o2)
			case <-timer.C:
				fired = true
				break collect
			}
		}
		if !fired && !timer.Stop() {
			<-timer.C
		}
		d.execBatch(d.batch)
	}
}

// groupFor returns the window group of mp, creating it from the
// dispatcher's freelist.
func (d *dispatcher) groupFor(mp *hds.Map) *windowGroup {
	if g, ok := d.groups[mp]; ok {
		return g
	}
	var g *windowGroup
	if n := len(d.free); n > 0 {
		g, d.free = d.free[n-1], d.free[:n-1]
	} else {
		g = &windowGroup{}
	}
	g.mp = mp
	d.groups[mp] = g
	d.order = append(d.order, g)
	return g
}

func (d *dispatcher) releaseGroups() {
	for _, g := range d.order {
		delete(d.groups, g.mp)
		g.reset()
		d.free = append(d.free, g)
	}
	d.order = d.order[:0]
}

func (d *dispatcher) execBatch(batch []*op) {
	s := d.s
	s.c.batches.Add(1)
	s.c.batchedOps.Add(uint64(len(batch)))
	d.reads, d.writes, d.cass = d.reads[:0], d.writes[:0], d.cass[:0]
	for _, o := range batch {
		switch o.class {
		case classRead:
			d.reads = append(d.reads, o)
		case classWrite:
			d.writes = append(d.writes, o)
		default:
			d.cass = append(d.cass, o)
		}
	}
	if len(d.reads) > 0 {
		d.execReadWindow(d.reads)
	}
	if len(d.writes) > 0 {
		d.execWriteWindow(d.writes)
	}
	for _, o := range d.cass {
		s.execCas(o)
		o.finish()
	}
}

// execReadWindow serves every read op of the window: one snapshot pin,
// one gather, one bulk materialization per namespace, then a positional
// scatter back to each op's response in arrival order. If any op in the
// window is a gets/mget, the namespace's pinned snapshot is registered
// as a cas token shared by the whole window (one pin names the version
// every one of those reads saw).
func (d *dispatcher) execReadWindow(reads []*op) {
	s := d.s
	withCas := false
	for _, o := range reads {
		s.c.cmdGet.Add(uint64(len(o.keys)))
		withCas = withCas || o.withCas
		for _, key := range o.keys {
			g := d.groupFor(s.store.NamespaceFor(key))
			g.rkeys = append(g.rkeys, key)
		}
	}
	for _, g := range d.order {
		seg, size, err := g.mp.SnapshotEntry()
		if err != nil {
			// Keep the positional cursors aligned, but remember the fault:
			// the scatter pass answers SERVER_ERROR, not a silent all-miss.
			s.c.snapshotErrors.Add(1)
			g.rerr = err
			g.vals = append(g.vals[:0], make([][]byte, len(g.rkeys))...)
			g.found = append(g.found[:0], make([]bool, len(g.rkeys))...)
			continue
		}
		g.ks = hds.NewStringsInto(s.store.Heap, g.rkeys, g.ks)
		var vals []hds.String
		vals, g.found = g.mp.GetManyAtInto(seg, g.ks, g.vstrs[:0], g.found[:0])
		g.vstrs = vals
		for i := range g.ks {
			g.ks[i].Release(s.store.Heap)
		}
		g.vals, g.valflat = hds.BytesManyInto(s.store.Heap, vals, g.valflat, g.vals)
		for i, ok := range g.found {
			if ok {
				vals[i].Release(s.store.Heap)
			}
		}
		if withCas {
			g.tok = s.toks.Register(g.mp, seg, size) // owns seg now
		} else {
			segment.ReleaseSeg(s.store.Heap.M, seg)
		}
	}
	// Scatter: same iteration order as the grouping pass, so each group's
	// cursor walks its results positionally.
	for _, o := range reads {
		hint := 32
		for _, key := range o.keys {
			hint += len(key) + 48
		}
		dst := o.grab(hint)
		var rerr error
		for _, key := range o.keys {
			g := d.groups[s.store.NamespaceFor(key)]
			v, ok := g.vals[g.rcur], g.found[g.rcur]
			g.rcur++
			if g.rerr != nil {
				rerr = g.rerr
				continue
			}
			if !ok {
				s.c.getMisses.Add(1)
				continue
			}
			s.c.getHits.Add(1)
			flags, payload := unframe(v)
			dst = AppendValue(dst, key, flags, payload, g.tok, o.withCas)
		}
		if rerr != nil {
			// Any erroring namespace fails the whole op: partial VALUE lines
			// with a silent gap would read as misses.
			o.out = appendErrorResponse(dst[:0], rerr)
		} else {
			o.out = append(dst, respEnd...)
		}
		o.finish()
	}
	d.releaseGroups()
}

// execWriteWindow coalesces the window's sets and deletes into one Apply
// wave commit per namespace — sets bind, tombstones unbind, the whole
// window publishes as a single version. DELETED/NOT_FOUND answers come
// from a pre-commit existence gather, corrected by in-window bindings so
// a delete following a same-window set still answers DELETED.
func (d *dispatcher) execWriteWindow(writes []*op) {
	s := d.s
	anyDelete := false
	for _, o := range writes {
		key := o.keys[0]
		g := d.groupFor(s.store.NamespaceFor(key))
		if o.verb == OpDelete {
			s.c.cmdDelete.Add(1)
			anyDelete = true
			g.pairs = append(g.pairs, hds.Pair{Key: key, Delete: true})
			g.delKeys = append(g.delKeys, key)
		} else {
			s.c.cmdSet.Add(1)
			g.pairs = append(g.pairs, hds.Pair{Key: key, Value: o.val.S})
		}
	}
	for _, g := range d.order {
		if len(g.delKeys) > 0 {
			g.dfound = g.dfound[:0]
			seg, _, err := g.mp.SnapshotEntry()
			if err != nil {
				// The Apply below still commits the tombstones; only the
				// DELETED/NOT_FOUND answer degrades. Count the fault.
				s.c.snapshotErrors.Add(1)
				g.dfound = append(g.dfound, make([]bool, len(g.delKeys))...)
			} else {
				g.ks = hds.NewStringsInto(s.store.Heap, g.delKeys, g.ks)
				var vals []hds.String
				vals, g.dfound = g.mp.GetManyAtInto(seg, g.ks, g.vstrs[:0], g.dfound)
				g.vstrs = vals
				for i := range g.ks {
					g.ks[i].Release(s.store.Heap)
				}
				for i, ok := range g.dfound {
					if ok {
						vals[i].Release(s.store.Heap)
					}
				}
				segment.ReleaseSeg(s.store.Heap.M, seg)
			}
		}
		g.werr = g.mp.Apply(g.pairs, hds.ApplyOptions{})
	}
	// One durability wait covers the whole window: every namespace's
	// commit is journaled by now, so a single group-commit fsync makes
	// all of them stable before any STORED/DELETED goes out. A no-op on
	// memory-only stores.
	if serr := s.store.AckDurable(); serr != nil {
		for _, g := range d.order {
			if g.werr == nil {
				g.werr = serr
			}
		}
	}
	// In-window binding state, for delete answers after same-window sets.
	var bound map[string]bool
	if anyDelete {
		bound = make(map[string]bool)
	}
	for _, o := range writes {
		key := o.keys[0]
		g := d.groups[s.store.NamespaceFor(key)]
		if o.verb != OpDelete {
			if g.werr != nil {
				o.out = appendErrorResponse(o.grab(64), g.werr)
			} else {
				o.out = respStored
			}
			if bound != nil {
				bound[string(key)] = true
			}
			o.finish()
			continue
		}
		existed := g.dfound[g.dcur]
		g.dcur++
		if b, ok := bound[string(key)]; ok {
			existed = b
		}
		bound[string(key)] = false
		switch {
		case g.werr != nil:
			o.out = appendErrorResponse(o.grab(64), g.werr)
		case existed:
			s.c.deleteHits.Add(1)
			o.out = respDeleted
		default:
			s.c.deleteMisses.Add(1)
			o.out = respNotFound
		}
		o.finish()
	}
	d.releaseGroups()
}
