package netfront

import (
	"testing"

	"repro/internal/kvstore"
	"repro/internal/segment"
)

// Registering the same (map, root) twice must reuse the live pin: hot
// read traffic on an unchanged version may not churn the bounded
// registry, or a client's in-flight gets→cas pin would be evicted by
// unrelated reads and the cas answered EXISTS spuriously. Eviction is
// LRU, so a refreshed pin outlives a colder one.
func TestTokenRegistryDedupAndLRU(t *testing.T) {
	store := kvstore.NewHicampServer(testCfg())
	mp := store.NamespaceFor([]byte("k"))
	if err := store.Set([]byte("k"), []byte("v0")); err != nil {
		t.Fatal(err)
	}
	reg := newTokenRegistry(store.Heap, 2)
	defer reg.Close()

	snap := func() (segment.Seg, uint64) {
		t.Helper()
		seg, size, err := mp.SnapshotEntry()
		if err != nil {
			t.Fatal(err)
		}
		return seg, size
	}

	segA, sizeA := snap()
	tokA := reg.Register(mp, segA, sizeA)
	segA2, sizeA2 := snap()
	if tok := reg.Register(mp, segA2, sizeA2); tok != tokA {
		t.Fatalf("same-root registration minted token %d, want %d reused", tok, tokA)
	}

	if err := store.Set([]byte("k2"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	segB, sizeB := snap()
	tokB := reg.Register(mp, segB, sizeB)
	if tokB == tokA {
		t.Fatalf("distinct roots share token %d", tokB)
	}

	// Refresh A to the hot end via a dedup hit (Acquire's reference is
	// handed to Register), then overflow the cap with a third root: the
	// eviction must take B — the coldest — not the refreshed A.
	pinA, ok := reg.Acquire(tokA)
	if !ok {
		t.Fatal("tokA vanished before cap was reached")
	}
	if tok := reg.Register(mp, pinA.seg, pinA.size); tok != tokA {
		t.Fatalf("dedup refresh minted token %d, want %d", tok, tokA)
	}
	if err := store.Set([]byte("k3"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	segC, sizeC := snap()
	tokC := reg.Register(mp, segC, sizeC)

	if _, ok := reg.Acquire(tokB); ok {
		t.Fatal("coldest pin survived past-cap registration")
	}
	for _, tok := range []uint64{tokA, tokC} {
		p, ok := reg.Acquire(tok)
		if !ok {
			t.Fatalf("token %d evicted, want live", tok)
		}
		segment.ReleaseSeg(store.Heap.M, p.seg)
	}
}
