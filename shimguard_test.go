package repro

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The bulk-mutation surface is one vocabulary now: hds.Map.Apply /
// hds.Ordered.Apply for heap structures, kvstore.Batch with Write/Read
// for the server. The old forwarding shims (hds.FromPairs, Map.SetMany,
// Ordered.PutMany) are deleted, and the server's SetMany/GetMany/
// DeleteMany survive exactly one PR as deprecated wrappers in
// internal/kvstore/compat.go. This guard keeps call sites from
// reappearing anywhere else.
func TestNoDeprecatedBulkShimCallers(t *testing.T) {
	// Banned everywhere outside the compat wrappers and their coverage:
	// the deleted hds shims and the deprecated kvstore wrappers.
	shimRE := regexp.MustCompile(`\.SetMany\(|\.DeleteMany\(|\.PutMany\(|hds\.FromPairs\(`)
	// .GetMany( is also the name of hds's legitimate bulk-read pipeline
	// (Map.GetMany/GetManyAt), so the server-wrapper ban applies only
	// outside the packages that implement and exercise that pipeline.
	getManyRE := regexp.MustCompile(`\.GetMany\(`)
	allowGetMany := func(path string) bool {
		return strings.HasPrefix(path, filepath.Join("internal", "hds")+string(os.PathSeparator)) ||
			strings.HasPrefix(path, filepath.Join("internal", "kvstore")+string(os.PathSeparator)) ||
			strings.HasPrefix(path, filepath.Join("internal", "netfront")+string(os.PathSeparator))
	}
	compat := func(path string) bool {
		return path == filepath.Join("internal", "kvstore", "compat.go") ||
			path == filepath.Join("internal", "kvstore", "compat_test.go")
	}
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || path == "shimguard_test.go" || compat(path) {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(src), "\n") {
			if shimRE.MatchString(line) {
				t.Errorf("%s:%d: deprecated bulk shim call %q — build a kvstore.Batch (Write) or use hds Apply",
					path, i+1, strings.TrimSpace(line))
			}
			if !allowGetMany(path) && getManyRE.MatchString(line) {
				t.Errorf("%s:%d: deprecated GetMany call %q — build a kvstore.Batch and call Read",
					path, i+1, strings.TrimSpace(line))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("walk: %v", err)
	}
}
