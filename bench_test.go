package repro

// One benchmark per table and figure of the paper's evaluation, plus
// microbenchmarks of the architectural primitives and the ablations
// called out in DESIGN.md (LLC on/off, line-size sweep). Regenerate the
// full tables with cmd/hicampbench; these benches time the same code
// paths under the standard harness:
//
//	go test -bench=. -benchmem

import (
	"fmt"
	"testing"

	"sync/atomic"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/experiments"
	"repro/internal/hds"
	"repro/internal/iterreg"
	"repro/internal/kvstore"
	"repro/internal/merge"
	"repro/internal/segmap"
	"repro/internal/segment"
	"repro/internal/spmv"
	"repro/internal/vmhost"
	"repro/internal/word"
)

// --- Figure 6: memcached DRAM accesses ---------------------------------

func BenchmarkFig6Memcached(b *testing.B) {
	for _, lb := range []int{16, 32, 64} {
		b.Run(fmt.Sprintf("line%d", lb), func(b *testing.B) {
			w := kvstore.NewWorkload(120, 240, 1200, 7)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := kvstore.RunFig6(lb, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationCache compares the memcached request path with the
// HICAMP LLC enabled against every operation going to DRAM — the value
// of the content-indexed cache of §3.1.
func BenchmarkAblationCache(b *testing.B) {
	run := func(b *testing.B, cacheLines int) uint64 {
		cfg := core.Config{LineBytes: 16, BucketBits: 16, DataWays: 12,
			CacheLines: cacheLines, CacheWays: 16}
		w := kvstore.NewWorkload(100, 200, 1000, 9)
		var dram uint64
		for i := 0; i < b.N; i++ {
			st, _, err := kvstore.RunHicamp(cfg, w)
			if err != nil {
				b.Fatal(err)
			}
			dram = st.Total()
		}
		return dram
	}
	b.Run("llc4mb", func(b *testing.B) {
		dram := run(b, (4<<20)/16)
		b.ReportMetric(float64(dram), "dram/run")
	})
	b.Run("nocache", func(b *testing.B) {
		dram := run(b, 0)
		b.ReportMetric(float64(dram), "dram/run")
	})
}

// --- Table 1: data compaction ------------------------------------------

func BenchmarkTable1Compaction(b *testing.B) {
	c := datagen.HTMLCorpus("bench", 60, 3000, 3)
	for _, lb := range []int{16, 32, 64} {
		b.Run(fmt.Sprintf("line%d", lb), func(b *testing.B) {
			var r float64
			for i := 0; i < b.N; i++ {
				r = kvstore.CompactionRatio(lb, c)
			}
			b.ReportMetric(r, "compaction")
		})
	}
}

// --- Sec 5.1.1: merge-update under contention ---------------------------

func BenchmarkConflictMCAS(b *testing.B) {
	h := hds.NewHeap(core.Config{
		LineBytes: 16, BucketBits: 16, DataWays: 12, CacheLines: 8192, CacheWays: 16,
	})
	vsid := h.SM.Create(segmap.Entry{Seg: segment.NewSparse(16), Flags: segmap.FlagMergeUpdate})
	b.RunParallel(func(pb *testing.PB) {
		i := uint64(0)
		for pb.Next() {
			i++
			e, err := h.SM.Load(vsid)
			if err != nil {
				b.Fatal(err)
			}
			tx := segment.NewTxn(h.M, e.Seg)
			tx.WriteWord(i%4096, i, word.TagRaw)
			next := tx.Commit()
			if _, err := merge.MCAS(h.M, h.SM, vsid, e.Seg, next, 0, nil); err != nil && err != merge.ErrConflict {
				b.Fatal(err)
			}
			segment.ReleaseSeg(h.M, e.Seg)
		}
	})
}

// --- Figure 7: SpMV traffic ---------------------------------------------

func BenchmarkFig7SpMV(b *testing.B) {
	for _, bench := range []struct {
		name string
		m    *spmv.Matrix
	}{
		{"fem2d", spmv.FEM2D(32)},
		{"lp", spmv.LP(8, 5, 8, 3)},
		{"circuit", spmv.Circuit(192, 4, 5)},
	} {
		b.Run(bench.name, func(b *testing.B) {
			var r spmv.TrafficResult
			for i := 0; i < b.N; i++ {
				r = spmv.MeasureTraffic(16, bench.m)
			}
			b.ReportMetric(r.Ratio(), "hicamp/conv")
		})
	}
}

// --- Figure 8 / Table 2: matrix footprint --------------------------------

func BenchmarkTable2Footprint(b *testing.B) {
	m := spmv.FEM2D(24)
	for _, lb := range []int{16, 32, 64} {
		b.Run(fmt.Sprintf("line%d", lb), func(b *testing.B) {
			var r spmv.FootprintResult
			for i := 0; i < b.N; i++ {
				r = spmv.MeasureFootprint(lb, m)
			}
			b.ReportMetric(r.SizeRatio(), "size-ratio")
		})
	}
}

// --- Figures 9 and 10: VM hosting ----------------------------------------

func BenchmarkFig9VMScaling(b *testing.B) {
	c, _ := vmhost.ClassByName("database")
	var last vmhost.Point
	for i := 0; i < b.N; i++ {
		pts := vmhost.ScaleVMs(c, 10)
		last = pts[len(pts)-1]
	}
	b.ReportMetric(last.CompactionHicamp(), "hicamp-x")
}

func BenchmarkFig10Tiles(b *testing.B) {
	var last vmhost.Point
	for i := 0; i < b.N; i++ {
		pts := vmhost.ScaleTiles(10)
		last = pts[len(pts)-1]
	}
	b.ReportMetric(last.CompactionHicamp(), "hicamp-x")
}

// --- Architectural microbenchmarks ---------------------------------------

func BenchmarkLookupLineDedup(b *testing.B) {
	m := core.NewMachine(core.DefaultConfig(16))
	c := word.ContentFromBytes(2, []byte("hot line content"))
	p := m.LookupLine(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Release(m.LookupLine(c))
	}
	_ = p
}

func BenchmarkSegmentBuild(b *testing.B) {
	for _, n := range []int{64, 1024} {
		b.Run(fmt.Sprintf("words%d", n), func(b *testing.B) {
			m := core.NewMachine(core.DefaultConfig(16))
			ws := make([]uint64, n)
			for i := range ws {
				ws[i] = uint64(i) << 40
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ws[0] = uint64(i) << 33 // vary content: real builds, real dedup
				s := segment.BuildWords(m, ws, nil)
				segment.ReleaseSeg(m, s)
			}
		})
	}
}

// BenchmarkSegmentBuildBulk compares line-at-a-time construction against
// the batch pipeline on identical fresh content. Run the parallel variant
// with -cpu=1,4 to see both single-thread batching gains and scaling;
// cmd/benchjson emits the same comparison as BENCH_PR2.json.
func BenchmarkSegmentBuildBulk(b *testing.B) {
	mkWords := func(n int, seed uint64) []uint64 {
		ws := make([]uint64, n)
		x := seed*2654435761 + 1
		for i := range ws {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			ws[i] = x
		}
		return ws
	}
	for _, n := range []int{4096, 65536} {
		b.Run(fmt.Sprintf("serial/words%d", n), func(b *testing.B) {
			m := core.NewMachine(core.DefaultConfig(16))
			b.SetBytes(int64(n * 8))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := segment.BuildWordsSerial(m, mkWords(n, uint64(i)), nil)
				segment.ReleaseSeg(m, s)
			}
		})
		b.Run(fmt.Sprintf("bulk/words%d", n), func(b *testing.B) {
			m := core.NewMachine(core.DefaultConfig(16))
			b.SetBytes(int64(n * 8))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := segment.BuildWords(m, mkWords(n, uint64(i)), nil)
				segment.ReleaseSeg(m, s)
			}
		})
	}
	// Parallel: goroutines build disjoint fresh segments over one machine.
	for _, variant := range []struct {
		name  string
		build func(m *core.Machine, ws []uint64) segment.Seg
	}{
		{"parallel-serial", func(m *core.Machine, ws []uint64) segment.Seg {
			return segment.BuildWordsSerial(m, ws, nil)
		}},
		{"parallel-bulk", func(m *core.Machine, ws []uint64) segment.Seg {
			return segment.BuildWords(m, ws, nil)
		}},
	} {
		b.Run(variant.name+"/words16384", func(b *testing.B) {
			m := core.NewMachine(core.DefaultConfig(16))
			var gid int64
			b.SetBytes(16384 * 8)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				g := uint64(atomic.AddInt64(&gid, 1)) << 32
				i := uint64(0)
				for pb.Next() {
					i++
					s := variant.build(m, mkWords(16384, g|i))
					segment.ReleaseSeg(m, s)
				}
			})
		})
	}
}

// BenchmarkBulkLoadMap compares one-Set-per-pair map loading against
// Apply's single-commit bulk path.
func BenchmarkBulkLoadMap(b *testing.B) {
	mkPairs := func(n int) []hds.Pair {
		pairs := make([]hds.Pair, n)
		for i := range pairs {
			pairs[i] = hds.Pair{
				Key:   []byte(fmt.Sprintf("bulk:key:%06d", i)),
				Value: []byte(fmt.Sprintf("value payload %d with a fairly typical short body of text", i)),
			}
		}
		return pairs
	}
	pairs := mkPairs(512)
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			h := hds.NewHeap(core.DefaultConfig(16))
			mp := hds.NewMap(h)
			for _, p := range pairs {
				k, v := hds.NewString(h, p.Key), hds.NewString(h, p.Value)
				if err := mp.Set(k, v); err != nil {
					b.Fatal(err)
				}
				k.Release(h)
				v.Release(h)
			}
		}
	})
	b.Run("apply", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			h := hds.NewHeap(core.DefaultConfig(16))
			if err := hds.NewMap(h).Apply(pairs, hds.ApplyOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkIteratorSequentialScan(b *testing.B) {
	m := core.NewMachine(core.DefaultConfig(16))
	ws := make([]uint64, 4096)
	for i := range ws {
		ws[i] = uint64(i) << 35
	}
	seg := segment.BuildWords(m, ws, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := iterreg.NewSegmentIterator(m, seg)
		var sum uint64
		for j := uint64(0); j < 4096; j++ {
			v, _ := it.Load(j)
			sum += v
		}
	}
}

func BenchmarkMapSetGet(b *testing.B) {
	h := hds.NewHeap(core.DefaultConfig(16))
	mp := hds.NewMap(h)
	keys := make([]hds.String, 256)
	vals := make([]hds.String, 256)
	for i := range keys {
		keys[i] = hds.NewString(h, []byte(fmt.Sprintf("key-%04d", i)))
		vals[i] = hds.NewString(h, []byte(fmt.Sprintf("value payload %d", i)))
	}
	b.Run("set", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := mp.Set(keys[i%256], vals[i%256]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("get", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if v, ok := mp.Get(keys[i%256]); ok {
				v.Release(h)
			}
		}
	})
}

func BenchmarkMergeDisjoint(b *testing.B) {
	m := core.NewMachine(core.DefaultConfig(16))
	mk := func(idx uint64) segment.Seg {
		tx := segment.NewTxn(m, segment.NewSparse(12))
		tx.WriteWord(idx, idx+1, word.TagRaw)
		return tx.Commit()
	}
	orig := mk(1)
	mod := mk(2)
	cur := mk(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := merge.Merge(m, orig, mod, cur, nil)
		if err != nil {
			b.Fatal(err)
		}
		segment.ReleaseSeg(m, got)
	}
}

// BenchmarkMergeWaveRebase times the wave rebase engine against the
// recursive reference walker on a full-depth triple: mod and cur update
// adjacent words of the same 32 leaf lines of a 16384-word segment, so
// neither side can resolve by sub-DAG skipping near the root.
func BenchmarkMergeWaveRebase(b *testing.B) {
	const n, k = 16384, 32
	m := core.NewMachine(core.DefaultConfig(64))
	ws := make([]uint64, n)
	for i := range ws {
		ws[i] = uint64(i%509) + 1
	}
	orig := segment.BuildWords(m, ws, nil)
	ups := func(off int) []segment.Update {
		out := make([]segment.Update, k)
		for i := range out {
			out[i] = segment.Update{
				Idx: uint64((n/k)*i + off),
				W:   uint64(i + off + 5000),
				T:   word.TagRaw,
			}
		}
		return out
	}
	mod, _ := segment.WriteBatch(m, orig, ups(0))
	cur, _ := segment.WriteBatch(m, orig, ups(1))
	for _, bb := range []struct {
		name string
		fn   func() (segment.Seg, error)
	}{
		{"wave", func() (segment.Seg, error) { return merge.Merge(m, orig, mod, cur, nil) }},
		{"serial", func() (segment.Seg, error) { return merge.MergeSerial(m, orig, mod, cur, nil) }},
	} {
		b.Run(bb.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				got, err := bb.fn()
				if err != nil {
					b.Fatal(err)
				}
				segment.ReleaseSeg(m, got)
			}
		})
	}
}

// BenchmarkMergeContention drives one deterministic stale-snapshot round
// per iteration: every worker builds its version against the same
// snapshot and the versions publish sequentially, so all but the first
// publish per round rebases through the merge engine — the contention
// model behind cmd/hicampbench -exp contention.
func BenchmarkMergeContention(b *testing.B) {
	const workers, words = 4, 1 << 14
	h := hds.NewHeap(core.DefaultConfig(64))
	ws := make([]uint64, words)
	for i := range ws {
		ws[i] = uint64(i%251) + 1
	}
	base := segment.BuildWords(h.M, ws, nil)
	vsid := h.SM.Create(segmap.Entry{
		Seg: base, Size: words * 8, Flags: segmap.FlagMergeUpdate,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := h.SM.Load(vsid)
		if err != nil {
			b.Fatal(err)
		}
		for g := 0; g < workers; g++ {
			idx := uint64((i*workers+g)*67) % words
			next, _ := segment.WriteBatch(h.M, e.Seg,
				[]segment.Update{{Idx: idx, W: uint64(i + g + 1), T: word.TagRaw}})
			ok, err := merge.MCAS(h.M, h.SM, vsid, e.Seg, next, words*8, nil)
			if err != nil || !ok {
				b.Fatalf("mcas ok=%v err=%v", ok, err)
			}
		}
		segment.ReleaseSeg(h.M, e.Seg)
	}
}

func BenchmarkQTSBuild(b *testing.B) {
	m := spmv.FEM2D(24)
	for i := 0; i < b.N; i++ {
		mach := core.NewMachine(core.Config{LineBytes: 16, BucketBits: 18, DataWays: 12})
		q := spmv.BuildQTS(mach, m)
		q.Release(mach)
	}
}

// BenchmarkHicampServerParallel drives the memcached-on-HICAMP server
// from concurrent goroutines — the workload the striped memory stack
// exists for. Each goroutine owns a disjoint key range (real memcached
// clients rarely contend on one key), so throughput should rise with
// GOMAXPROCS now that no global lock serializes the request path:
//
//	go test -bench=HicampServerParallel -cpu=1,4
func BenchmarkHicampServerParallel(b *testing.B) {
	newServer := func(b *testing.B) *kvstore.HicampServer {
		srv := kvstore.NewHicampServer(core.Config{
			LineBytes: 16, BucketBits: 16, DataWays: 12,
			CacheLines: 8192, CacheWays: 16,
		})
		for g := 0; g < 64; g++ {
			for i := 0; i < 32; i++ {
				k := []byte(fmt.Sprintf("g%02d-key-%04d", g, i))
				v := []byte(fmt.Sprintf("goroutine %d value payload number %d", g, i))
				if err := srv.Set(k, v); err != nil {
					b.Fatal(err)
				}
			}
		}
		return srv
	}
	b.Run("get", func(b *testing.B) {
		srv := newServer(b)
		var gid int64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			g := int(atomic.AddInt64(&gid, 1)) % 64
			i := 0
			for pb.Next() {
				k := []byte(fmt.Sprintf("g%02d-key-%04d", g, i%32))
				if _, ok := srv.Get(k); !ok {
					b.Fatal("preloaded key missing")
				}
				i++
			}
		})
	})
	b.Run("set", func(b *testing.B) {
		srv := newServer(b)
		var gid int64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			g := int(atomic.AddInt64(&gid, 1)) % 64
			i := 0
			for pb.Next() {
				k := []byte(fmt.Sprintf("g%02d-key-%04d", g, i%32))
				v := []byte(fmt.Sprintf("updated payload %d from goroutine %d", i, g))
				if err := srv.Set(k, v); err != nil {
					b.Fatal(err)
				}
				i++
			}
		})
	})
}

// BenchmarkExperimentSuite smoke-times the full test-scale harness,
// the closest single number to "regenerate the paper".
func BenchmarkExperimentSuite(b *testing.B) {
	if testing.Short() {
		b.Skip("full suite")
	}
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.RunFig6(experiments.ScaleTest); err != nil {
			b.Fatal(err)
		}
		experiments.RunTable1(experiments.ScaleTest)
		if _, _, err := experiments.RunConflict(experiments.ScaleTest); err != nil {
			b.Fatal(err)
		}
		_, res := experiments.RunFig8(experiments.ScaleTest)
		experiments.RunTable2(res)
		experiments.RunFig9()
		experiments.RunFig10()
	}
}

// --- PR 3: bulk read/gather pipeline -----------------------------------
//
// Benchmarks named Bulk* form the CI bench smoke stage
// (go test -run=NONE -bench=Bulk -benchtime=1x ./...); keep them fast.

// kvLoadBatch builds a set-only kvstore batch from parallel slices.
func kvLoadBatch(keys []string, values [][]byte) kvstore.Batch {
	batch := make(kvstore.Batch, len(keys))
	for i := range keys {
		batch[i] = kvstore.KV{Key: []byte(keys[i]), Value: values[i]}
	}
	return batch
}

// BenchmarkBulkMultiGet compares per-key GetVia against one batched Read
// for a power-law GET batch — the benchjson kv_multiget pair at test scale.
func BenchmarkBulkMultiGet(b *testing.B) {
	const items, batchKeys = 256, 512
	c := datagen.HTMLCorpus("bench-bulk-mget", items, 512, 21)
	trace := datagen.RequestTrace(items, 3*batchKeys, 10, 33)
	keys := make([][]byte, 0, batchKeys)
	for _, r := range trace {
		if r.Get {
			keys = append(keys, []byte(c.Keys[r.Key]))
			if len(keys) == batchKeys {
				break
			}
		}
	}
	newSrv := func(b *testing.B) *kvstore.HicampServer {
		srv := kvstore.NewHicampServer(core.TestConfig())
		if err := srv.Write(kvLoadBatch(c.Keys, c.Items)); err != nil {
			b.Fatal(err)
		}
		return srv
	}
	b.Run("serial", func(b *testing.B) {
		srv := newSrv(b)
		reader, err := srv.OpenReader()
		if err != nil {
			b.Fatal(err)
		}
		defer reader.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, k := range keys {
				srv.GetVia(reader, k)
			}
		}
	})
	b.Run("bulk", func(b *testing.B) {
		srv := newSrv(b)
		rd := make(kvstore.Batch, len(keys))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := range keys {
				rd[j] = kvstore.KV{Key: keys[j]}
			}
			srv.Read(rd)
		}
	})
}

// BenchmarkBulkSpMVGather compares the depth-first SpMV kernel against
// the level-order gather kernel on a warm machine.
func BenchmarkBulkSpMVGather(b *testing.B) {
	mat := spmv.FEM2D(24)
	mach := core.NewMachine(core.TestConfig())
	q := spmv.BuildQTS(mach, mat)
	x := make([]float64, mat.Cols)
	for i := range x {
		x[i] = float64(i%97)/48.5 - 1
	}
	xseg := spmv.BuildXSegment(mach, x)
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q.MulVec(mach, xseg, mat.Cols)
		}
	})
	b.Run("gather", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q.MulVecGather(mach, xseg, mat.Cols)
		}
	})
}

// BenchmarkBulkReadWords compares serial ReadWords (one root walk per
// word) against the level-order materializer on one large segment.
func BenchmarkBulkReadWords(b *testing.B) {
	m := core.NewMachine(core.TestConfig())
	ws := make([]uint64, 1<<14)
	for i := range ws {
		ws[i] = uint64(i) * 2654435761
	}
	s := segment.BuildWords(m, ws, nil)
	n := uint64(len(ws))
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			segment.ReadWords(m, s, 0, n)
		}
	})
	b.Run("bulk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			segment.ReadWordsBulk(m, s, 0, n)
		}
	})
}

// --- PR 4: streaming scan pipeline -------------------------------------

// BenchmarkBulkStoreScan compares the serial full-store dump (one
// NextNonZero descent per slot, point reads per binding) against the
// streamed Scan — the benchjson kv_store_scan pair at test scale.
func BenchmarkBulkStoreScan(b *testing.B) {
	const items = 4096
	pool := datagen.HTMLCorpus("bench-bulk-scan", 128, 512, 41)
	keys := make([]string, items)
	values := make([][]byte, items)
	for i := range keys {
		keys[i] = fmt.Sprintf("scan:key:%05d", i)
		values[i] = pool.Items[i%len(pool.Items)]
	}
	newSrv := func(b *testing.B) *kvstore.HicampServer {
		srv := kvstore.NewHicampServer(core.TestConfig())
		if err := srv.Write(kvLoadBatch(keys, values)); err != nil {
			b.Fatal(err)
		}
		return srv
	}
	b.Run("serial", func(b *testing.B) {
		srv := newSrv(b)
		mp := srv.Map()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			seg, err := mp.Snapshot()
			if err != nil {
				b.Fatal(err)
			}
			m := srv.Heap.M
			for idx := uint64(0); ; {
				nz, ok := segment.NextNonZero(m, seg, idx)
				if !ok {
					break
				}
				slot := nz - nz%4
				if lenPlus, _ := segment.ReadWord(m, seg, slot+1); lenPlus != 0 {
					vroot, _ := segment.ReadWord(m, seg, slot)
					vh := segment.HeightFor(m.LineWords(), max(1, (lenPlus-1+7)/8))
					segment.ReadBytes(m, segment.Seg{Root: word.PLID(vroot), Height: vh}, 0, lenPlus-1)
				}
				idx = slot + 4
			}
			segment.ReleaseSeg(m, seg)
		}
	})
	b.Run("scan", func(b *testing.B) {
		srv := newSrv(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := srv.Scan(func(k, v []byte) bool { return true }); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBulkDiffSnapshots compares two full serial walks against the
// PLID-equality diff co-walk on snapshots differing in ~1% of keys.
func BenchmarkBulkDiffSnapshots(b *testing.B) {
	const items, changes = 4096, 40
	pool := datagen.HTMLCorpus("bench-bulk-diff", 128, 512, 43)
	keys := make([]string, items)
	values := make([][]byte, items)
	for i := range keys {
		keys[i] = fmt.Sprintf("diff:key:%05d", i)
		values[i] = pool.Items[i%len(pool.Items)]
	}
	srv := kvstore.NewHicampServer(core.TestConfig())
	if err := srv.Write(kvLoadBatch(keys, values)); err != nil {
		b.Fatal(err)
	}
	old, err := srv.Map().Snapshot()
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < changes; i++ {
		k := keys[(i*101)%items]
		if err := srv.Set([]byte(k), []byte(fmt.Sprintf("mutated %d", i))); err != nil {
			b.Fatal(err)
		}
	}
	cur, err := srv.Map().Snapshot()
	if err != nil {
		b.Fatal(err)
	}
	m := srv.Heap.M
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			diffs := 0
			for _, seg := range []segment.Seg{old, cur} {
				for idx := uint64(0); ; {
					nz, ok := segment.NextNonZero(m, seg, idx)
					if !ok {
						break
					}
					diffs++
					idx = nz + 1
				}
			}
			if diffs == 0 {
				b.Fatal("no words walked")
			}
		}
	})
	b.Run("diff", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n := 0
			hds.DiffSnapshots(srv.Heap, old, cur, func(d hds.MapDelta) bool {
				n++
				return true
			})
			if n != changes {
				b.Fatalf("diff found %d deltas, want %d", n, changes)
			}
		}
	})
}

// BenchmarkBulkScanWords compares the per-element serial walk against
// the wave scanner on one large shared-structure segment.
func BenchmarkBulkScanWords(b *testing.B) {
	m := core.NewMachine(core.TestConfig())
	tile := make([]uint64, 256)
	for i := range tile {
		tile[i] = uint64(i)*2654435761 + 1
	}
	ws := make([]uint64, 0, 1<<14)
	for len(ws) < 1<<14 {
		ws = append(ws, tile...)
	}
	s := segment.BuildWords(m, ws, nil)
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for idx := uint64(0); ; {
				nz, ok := segment.NextNonZero(m, s, idx)
				if !ok {
					break
				}
				segment.ReadWord(m, s, nz)
				idx = nz + 1
			}
		}
	})
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			segment.ScanWords(m, s, 0, func(uint64, uint64, word.Tag) bool { return true })
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			segment.ScanWordsParallel(m, s, 0, 4, func(uint64, uint64, word.Tag) bool { return true })
		}
	})
}

// BenchmarkWriteBatch compares the serial write discipline — one Txn
// path rebuild and commit per update — against the wave-ordered bulk
// writer, which groups sibling updates per DAG level and canonicalizes
// each level in one batch lookup. cmd/benchjson emits the same
// comparison (plus the simulated-DRAM axis) as BENCH_PR5.json.
func BenchmarkWriteBatch(b *testing.B) {
	const words = 65536
	mkWords := func(n int, seed uint64) []uint64 {
		ws := make([]uint64, n)
		x := seed*2654435761 + 1
		for i := range ws {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			ws[i] = x
		}
		return ws
	}
	mkUps := func(n int, seed uint64) []segment.Update {
		rs := mkWords(2*n, seed)
		ups := make([]segment.Update, n)
		for i := range ups {
			ups[i] = segment.Update{Idx: rs[2*i] % words, W: rs[2*i+1] | 1}
		}
		return ups
	}
	for _, n := range []int{256, 4096} {
		b.Run(fmt.Sprintf("serial/updates%d", n), func(b *testing.B) {
			m := core.NewMachine(core.DefaultConfig(16))
			s := segment.BuildWords(m, mkWords(words, 5), nil)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, u := range mkUps(n, uint64(i)+1) {
					tx := segment.NewTxn(m, s)
					tx.WriteWord(u.Idx, u.W, u.T)
					next := tx.Commit()
					segment.ReleaseSeg(m, s)
					s = next
				}
			}
		})
		b.Run(fmt.Sprintf("wave/updates%d", n), func(b *testing.B) {
			m := core.NewMachine(core.DefaultConfig(16))
			s := segment.BuildWords(m, mkWords(words, 5), nil)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				next, _ := segment.WriteBatch(m, s, mkUps(n, uint64(i)+1))
				segment.ReleaseSeg(m, s)
				s = next
			}
		})
	}
}
