// Command hicampbench regenerates every table and figure of the paper's
// evaluation (§5). With no flags it runs the full set at test scale;
// -exp selects one experiment and -paper approaches the paper's workload
// sizes (slower).
//
//	hicampbench -exp fig6
//	hicampbench -exp table2 -paper
//	hicampbench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/pool"
)

var experimentOrder = []string{
	"fig6", "table1", "chunking", "conflict", "contention", "netload", "durability", "fig7", "fig8", "table2", "fig9", "fig10",
}

var descriptions = map[string]string{
	"fig6":       "memcached DRAM accesses, conventional vs HICAMP, 16/32/64B lines",
	"table1":     "memcached data compaction per dataset and line size",
	"chunking":   "content-defined chunked ingest: shifted-corpus dedup, cold vs warm memo",
	"conflict":   "sec 5.1.1 concurrent-update analysis + live mCAS contention",
	"contention": "multi-writer merge-update: DRAM flat over size, throughput vs overlap",
	"netload":    "loopback memcached front end: batch aggregation vs per-request dispatch",
	"durability": "acked-write throughput, per-write fsync vs group commit; cold recovery vs checkpoint placement",
	"fig7":       "SpMV off-chip access ratio over the matrix suite",
	"fig8":       "per-matrix footprint, best HICAMP format vs CSR",
	"table2":     "footprint savings grouped by matrix category",
	"fig9":       "memory consumed scaling 1-10 VMs per VMmark workload",
	"fig10":      "memory consumed scaling 1-10 VMmark tiles",
}

func main() {
	exp := flag.String("exp", "all", "experiment id (see -list), or all")
	paper := flag.Bool("paper", false, "run at paper-approaching scale (slower)")
	list := flag.Bool("list", false, "list experiments and exit")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	poolstats := flag.Bool("poolstats", false, "print scratch-pool hit/miss/oversize telemetry on exit")
	flag.Parse()

	if *list {
		for _, id := range experimentOrder {
			fmt.Printf("%-9s %s\n", id, descriptions[id])
		}
		return
	}
	// Profiles are finalized by defers inside realMain, so run/flag errors
	// (which exit non-zero) still flush whatever was collected.
	os.Exit(realMain(*exp, *paper, *cpuprofile, *memprofile, *poolstats))
}

func realMain(exp string, paper bool, cpuprofile, memprofile string, poolstats bool) int {
	if cpuprofile != "" {
		f, err := os.Create(cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hicampbench: -cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "hicampbench: -cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if memprofile != "" {
		defer func() {
			f, err := os.Create(memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "hicampbench: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the profile reflects live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "hicampbench: -memprofile: %v\n", err)
			}
		}()
	}
	sc := experiments.ScaleTest
	if paper {
		sc = experiments.ScalePaper
	}
	ids := experimentOrder
	if exp != "all" {
		ids = []string{exp}
	}
	for _, id := range ids {
		if err := run(id, sc); err != nil {
			fmt.Fprintf(os.Stderr, "hicampbench: %s: %v\n", id, err)
			return 1
		}
	}
	if poolstats {
		printPoolStats()
	}
	return 0
}

// printPoolStats renders the scratch-pool registry: one row per pool
// with the aggregate hit/miss/oversize/returned counters, and the
// non-empty bins underneath. A healthy steady-state run shows hits
// dominating misses (misses are the warmup) and oversize near zero.
func printPoolStats() {
	snap := pool.Snapshot()
	if len(snap) == 0 {
		fmt.Println("scratch pools: none registered")
		return
	}
	fmt.Println("scratch pools (hits/misses/oversize/returned):")
	for _, ps := range snap {
		if ps.Hits == 0 && ps.Misses == 0 && ps.Oversize == 0 {
			continue
		}
		fmt.Printf("  %-22s %8d %8d %8d %8d\n",
			ps.Name, ps.Hits, ps.Misses, ps.Oversize, ps.Returned)
		for _, b := range ps.Bins {
			if b.Hits == 0 && b.Misses == 0 {
				continue
			}
			fmt.Printf("    bin %-8d           %8d %8d          %8d\n",
				b.Size, b.Hits, b.Misses, b.Returned)
		}
	}
	fmt.Println()
}

func run(id string, sc experiments.Scale) error {
	start := time.Now()
	var tbl experiments.Table
	switch id {
	case "fig6":
		t, _, err := experiments.RunFig6(sc)
		if err != nil {
			return err
		}
		tbl = t
	case "table1":
		tbl, _ = experiments.RunTable1(sc)
	case "chunking":
		tbl, _ = experiments.RunChunking(sc)
	case "conflict":
		t, _, err := experiments.RunConflict(sc)
		if err != nil {
			return err
		}
		tbl = t
	case "contention":
		t, _, err := experiments.RunContention(sc)
		if err != nil {
			return err
		}
		tbl = t
	case "netload":
		t, _, err := experiments.RunNetload(sc)
		if err != nil {
			return err
		}
		tbl = t
	case "durability":
		t, _, err := experiments.RunDurability(sc)
		if err != nil {
			return err
		}
		tbl = t
	case "fig7":
		tbl, _ = experiments.RunFig7(sc)
	case "fig8":
		tbl, _ = experiments.RunFig8(sc)
	case "table2":
		_, results := experiments.RunFig8(sc)
		tbl, _ = experiments.RunTable2(results)
	case "fig9":
		tbl, _ = experiments.RunFig9()
	case "fig10":
		tbl, _ = experiments.RunFig10()
	default:
		var known []string
		for _, k := range experimentOrder {
			known = append(known, fmt.Sprintf("  %-10s %s", k, descriptions[k]))
		}
		return fmt.Errorf("unknown experiment %q; available experiments:\n%s",
			id, strings.Join(known, "\n"))
	}
	fmt.Print(tbl.Render())
	fmt.Printf("(%s in %.1fs)\n\n", id, time.Since(start).Seconds())
	return nil
}
