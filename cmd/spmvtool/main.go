// Command spmvtool inspects the sparse-matrix formats of §5.2: generate a
// matrix from the synthetic suite families, report its footprint in every
// format, and run SpMV on both architectures.
//
//	spmvtool -gen fem2d -k 32 -report
//	spmvtool -gen lp -report -multiply
//	spmvtool -suite            # footprints for the whole 100-matrix suite
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/spmv"
)

func main() {
	gen := flag.String("gen", "fem2d", "family: fem2d, fem3d, lp, banded, circuit, pattern, random")
	k := flag.Int("k", 24, "size parameter (grid edge / blocks / dimension scale)")
	seed := flag.Int64("seed", 1, "generator seed")
	lineBytes := flag.Int("line", 16, "HICAMP line size")
	report := flag.Bool("report", true, "print footprint report")
	multiply := flag.Bool("multiply", false, "run SpMV and report traffic")
	suite := flag.Bool("suite", false, "report the full 100-matrix suite")
	flag.Parse()

	if *suite {
		for _, m := range spmv.Suite(1, *seed) {
			r := spmv.MeasureFootprint(*lineBytes, m)
			fmt.Printf("%-28s %-8s sym=%-5v csr=%-9d qts=%-9d nzd=%-9d ratio=%.3f\n",
				r.Name, r.Category, r.Sym, r.CSRBytes, r.QTSBytes, r.NZDBytes, r.SizeRatio())
		}
		return
	}

	m := build(*gen, *k, *seed)
	fmt.Printf("%s: %dx%d, %d non-zeros, symmetric=%v\n",
		m.Name, m.Rows, m.Cols, m.NNZ(), m.Sym)

	if *report {
		r := spmv.MeasureFootprint(*lineBytes, m)
		fmt.Printf("  CSR baseline : %d bytes\n", r.CSRBytes)
		fmt.Printf("  HICAMP QTS   : %d bytes\n", r.QTSBytes)
		fmt.Printf("  HICAMP NZD   : %d bytes\n", r.NZDBytes)
		fmt.Printf("  best ratio   : %.3f (HICAMP/conventional)\n", r.SizeRatio())
	}
	if *multiply {
		t := spmv.MeasureTraffic(*lineBytes, m)
		fmt.Printf("  SpMV DRAM    : conventional=%d hicamp=%d ratio=%.3f\n",
			t.ConvDRAM, t.HicampDRAM, t.Ratio())
	}
}

func build(family string, k int, seed int64) *spmv.Matrix {
	switch family {
	case "fem2d":
		return spmv.FEM2D(k)
	case "fem3d":
		return spmv.FEM3D(k)
	case "lp":
		return spmv.LP(k/2+2, k/3+2, 8, seed)
	case "banded":
		return spmv.Banded(k*8, 3, true, seed)
	case "circuit":
		return spmv.Circuit(k*8, 4, seed)
	case "pattern":
		return spmv.Pattern(k/4+2, 16, seed)
	case "random":
		return spmv.Random(k*4, 0.02, seed)
	default:
		fmt.Fprintf(os.Stderr, "spmvtool: unknown family %q\n", family)
		os.Exit(2)
		return nil
	}
}
