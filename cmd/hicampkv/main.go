// Command hicampkv serves a memcached-style text protocol backed by the
// HICAMP key-value map (paper §4.4): every connection gets its own
// read-only iterator register and reads run against private snapshots;
// writes commit with merge-update, so concurrent clients never block each
// other and a killed connection can never leave the map inconsistent.
//
// Protocol (a text subset of memcached):
//
//	set <key> <bytes>\r\n<data>\r\n  -> STORED
//	mset <n>\r\n then n of <key> <bytes>\r\n<data>\r\n -> STORED <n>
//	get <key> [<key> ...]\r\n        -> VALUE <key> <bytes>\r\n<data>\r\n... END
//	delete <key>\r\n                 -> DELETED | NOT_FOUND
//	stats\r\n                        -> memory-system counters
//	quit\r\n
//
// Try it:
//
//	hicampkv -addr :11222 &
//	printf 'set greeting 5\r\nhello\r\nget greeting\r\nquit\r\n' | nc localhost 11222
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/hds"
	"repro/internal/kvstore"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:11222", "listen address")
	lineBytes := flag.Int("line", 16, "HICAMP line size (16, 32 or 64)")
	flag.Parse()

	srv := kvstore.NewHicampServer(core.DefaultConfig(*lineBytes))
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("hicampkv: %v", err)
	}
	log.Printf("hicampkv: serving on %s (%dB lines)", ln.Addr(), *lineBytes)
	for {
		conn, err := ln.Accept()
		if err != nil {
			log.Printf("hicampkv: accept: %v", err)
			return
		}
		go serve(srv, conn)
	}
}

func serve(srv *kvstore.HicampServer, conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	defer w.Flush()

	// One iterator register per connection, reloaded per get (§4.4).
	reader, err := srv.OpenReader()
	if err != nil {
		fmt.Fprintf(w, "SERVER_ERROR %v\r\n", err)
		return
	}
	defer reader.Close()

	for {
		w.Flush()
		line, err := r.ReadString('\n')
		if err != nil {
			return
		}
		fields := strings.Fields(strings.TrimSpace(line))
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "set":
			if len(fields) != 3 {
				fmt.Fprint(w, "CLIENT_ERROR usage: set <key> <bytes>\r\n")
				continue
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil || n < 0 || n > 8<<20 {
				fmt.Fprint(w, "CLIENT_ERROR bad length\r\n")
				continue
			}
			data := make([]byte, n+2) // payload + trailing \r\n
			if _, err := io.ReadFull(r, data); err != nil {
				return
			}
			if err := srv.Set([]byte(fields[1]), data[:n]); err != nil {
				fmt.Fprintf(w, "SERVER_ERROR %v\r\n", err)
				continue
			}
			fmt.Fprint(w, "STORED\r\n")
		case "mset":
			// Batched store: n key/payload pairs land in one wave commit
			// through the unified bulk-apply path.
			if len(fields) != 2 {
				fmt.Fprint(w, "CLIENT_ERROR usage: mset <n>\r\n")
				continue
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 || n > 1<<16 {
				fmt.Fprint(w, "CLIENT_ERROR bad count\r\n")
				continue
			}
			keys := make([]string, 0, n)
			vals := make([][]byte, 0, n)
			bad := false
			for i := 0; i < n; i++ {
				hdr, err := r.ReadString('\n')
				if err != nil {
					return
				}
				hf := strings.Fields(strings.TrimSpace(hdr))
				if len(hf) != 2 {
					bad = true
					break
				}
				sz, err := strconv.Atoi(hf[1])
				if err != nil || sz < 0 || sz > 8<<20 {
					bad = true
					break
				}
				data := make([]byte, sz+2) // payload + trailing \r\n
				if _, err := io.ReadFull(r, data); err != nil {
					return
				}
				keys = append(keys, hf[0])
				vals = append(vals, data[:sz])
			}
			if bad {
				fmt.Fprint(w, "CLIENT_ERROR usage: mset <n>\\r\\n then n of <key> <bytes>\\r\\n<data>\\r\\n\r\n")
				continue
			}
			if err := srv.SetMany(keys, vals); err != nil {
				fmt.Fprintf(w, "SERVER_ERROR %v\r\n", err)
				continue
			}
			fmt.Fprintf(w, "STORED %d\r\n", len(keys))
		case "get":
			switch {
			case len(fields) < 2:
				fmt.Fprint(w, "CLIENT_ERROR usage: get <key> [<key> ...]\r\n")
				continue
			case len(fields) == 2:
				if v, ok := srv.GetVia(reader, []byte(fields[1])); ok {
					fmt.Fprintf(w, "VALUE %s %d\r\n", fields[1], len(v))
					w.Write(v)
					fmt.Fprint(w, "\r\n")
				}
			default:
				// Multi-key get resolves every key through one bulk
				// gather over a single snapshot.
				keys := make([][]byte, len(fields)-1)
				for i, f := range fields[1:] {
					keys[i] = []byte(f)
				}
				vs, found := srv.GetMany(keys)
				for i, ok := range found {
					if !ok {
						continue
					}
					fmt.Fprintf(w, "VALUE %s %d\r\n", fields[1+i], len(vs[i]))
					w.Write(vs[i])
					fmt.Fprint(w, "\r\n")
				}
			}
			fmt.Fprint(w, "END\r\n")
		case "delete":
			if len(fields) != 2 {
				fmt.Fprint(w, "CLIENT_ERROR usage: delete <key>\r\n")
				continue
			}
			if _, ok := srv.GetVia(reader, []byte(fields[1])); !ok {
				fmt.Fprint(w, "NOT_FOUND\r\n")
				continue
			}
			if err := srv.Delete([]byte(fields[1])); err != nil {
				fmt.Fprintf(w, "SERVER_ERROR %v\r\n", err)
				continue
			}
			fmt.Fprint(w, "DELETED\r\n")
		case "keys":
			if len(fields) != 1 {
				fmt.Fprint(w, "CLIENT_ERROR usage: keys\r\n")
				continue
			}
			ks, err := srv.Keys()
			if err != nil {
				fmt.Fprintf(w, "SERVER_ERROR %v\r\n", err)
				continue
			}
			for _, k := range ks {
				fmt.Fprintf(w, "KEY %s\r\n", k)
			}
			fmt.Fprint(w, "END\r\n")
		case "scan":
			// Full-store dump through one streamed snapshot scan.
			if len(fields) != 1 {
				fmt.Fprint(w, "CLIENT_ERROR usage: scan\r\n")
				continue
			}
			if err := srv.Scan(func(key, value []byte) bool {
				fmt.Fprintf(w, "VALUE %s %d\r\n", key, len(value))
				w.Write(value)
				fmt.Fprint(w, "\r\n")
				return true
			}); err != nil {
				fmt.Fprintf(w, "SERVER_ERROR %v\r\n", err)
				continue
			}
			fmt.Fprint(w, "END\r\n")
		case "stats":
			st := srv.Stats()
			fmt.Fprintf(w, "STAT live_lines %d\r\n", srv.Heap.M.LiveLines())
			fmt.Fprintf(w, "STAT footprint_bytes %d\r\n", srv.Heap.M.FootprintBytes())
			fmt.Fprintf(w, "STAT dram_accesses %d\r\n", st.Store.Total())
			fmt.Fprintf(w, "STAT dram_lookups %d\r\n", st.Store.LookupTraffic())
			fmt.Fprintf(w, "STAT cache_hits %d\r\n", st.Cache.Hits)
			fmt.Fprintf(w, "STAT cache_misses %d\r\n", st.Cache.Misses)
			ms := srv.MapStats()
			fmt.Fprintf(w, "STAT segmap_entries %d\r\n", ms.Entries)
			fmt.Fprintf(w, "STAT cas_ok %d\r\n", ms.CASOK)
			fmt.Fprintf(w, "STAT cas_conflicts %d\r\n", ms.Total.Conflicts)
			fmt.Fprintf(w, "STAT cas_denied %d\r\n", ms.Total.Denied)
			fmt.Fprintf(w, "STAT batch_aborts %d\r\n", ms.Total.Aborts)
			fmt.Fprintf(w, "STAT cas_retries %d\r\n", hds.CASRetries())
			fmt.Fprint(w, "END\r\n")
		case "quit":
			return
		default:
			fmt.Fprint(w, "ERROR\r\n")
		}
	}
}
