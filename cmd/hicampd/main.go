// Command hicampd serves the memcached text protocol over a HICAMP
// store: get/gets/set/cas/delete and multi-key get, with stats wired to
// the simulated machine's telemetry (DRAM accesses, live lines,
// per-namespace commit/conflict counters, scratch-pool hit rates).
// Requests from all connections aggregate into bounded flush windows —
// one snapshot + gather wave per namespace for a window's reads, one
// Apply wave commit for its writes — unless -naive selects per-request
// dispatch. Keys with a "tenant/" prefix route to per-tenant namespaces
// (own VSID, own commit/conflict domain).
//
//	hicampd -addr :11211
//	printf 'set greeting 0 0 5\r\nhello\r\nget greeting\r\nquit\r\n' | nc localhost 11211
//
// -smoke serves one loopback socket, drives a built-in mixed workload
// against it (sets, pipelined multigets, cas rebase, deletes, tenant
// keys, stats), shuts the server down cleanly and verifies the
// connection scratch pools leaked nothing; CI runs this as the network
// stage.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/kvstore"
	"repro/internal/netfront"
	"repro/internal/pool"
)

func main() {
	addr := flag.String("addr", ":11211", "listen address")
	lineBytes := flag.Int("line-bytes", 16, "HICAMP line size in bytes (16/32/64)")
	cacheKB := flag.Int("cache-kb", 256, "simulated LLC size in KB")
	naive := flag.Bool("naive", false, "per-request dispatch instead of batch aggregation")
	maxBatch := flag.Int("max-batch", 0, "ops per flush window (0 = default)")
	flushWindow := flag.Duration("flush-window", 0, "max wait for window stragglers (0 = default)")
	smoke := flag.Bool("smoke", false, "serve loopback, run the built-in workload, verify pool hygiene, exit")
	dataDir := flag.String("data-dir", "", "durable data directory (empty = memory-only)")
	ckptEvery := flag.Duration("checkpoint-every", 30*time.Second, "background checkpoint interval with -data-dir")
	flag.Parse()

	cfg := core.Config{
		LineBytes: *lineBytes, BucketBits: 18, DataWays: 12,
		CacheLines: (*cacheKB << 10) / *lineBytes, CacheWays: 16,
	}
	opts := netfront.DefaultOptions()
	opts.Aggregate = !*naive
	if *maxBatch > 0 {
		opts.MaxBatch = *maxBatch
	}
	if *flushWindow > 0 {
		opts.FlushWindow = *flushWindow
	}
	store, err := kvstore.NewHicampServerOpts(cfg, kvstore.ServerOptions{
		DataDir:         *dataDir,
		CheckpointEvery: *ckptEvery,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "hicampd: open store: %v\n", err)
		os.Exit(1)
	}
	if store.Durable() {
		ds := store.DurableStats()
		fmt.Printf("hicampd: recovered %d lines, %d roots in %s from %s\n",
			ds.RecoveredLines, ds.RecoveredRoots, ds.RecoveryTime, *dataDir)
	}
	srv := netfront.NewServer(store, opts)

	if *smoke {
		os.Exit(runSmoke(srv))
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "hicampd: shutting down")
		srv.Close()
		if err := store.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "hicampd: close store: %v\n", err)
		}
	}()
	fmt.Printf("hicampd: serving memcached protocol on %s\n", *addr)
	if err := srv.ListenAndServe(*addr); err != nil && err != netfront.ErrServerClosed {
		fmt.Fprintf(os.Stderr, "hicampd: %v\n", err)
		os.Exit(1)
	}
}

// runSmoke drives the built-in loopback workload and returns the
// process exit code. Every step's failure is fatal: the stage exists to
// catch protocol or lifecycle regressions that unit tests scoped to one
// layer might miss.
func runSmoke(srv *netfront.Server) int {
	fail := func(format string, args ...any) int {
		fmt.Fprintf(os.Stderr, "hicampd -smoke: "+format+"\n", args...)
		return 1
	}
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe("127.0.0.1:0") }()
	var addr string
	for i := 0; i < 100 && addr == ""; i++ {
		if a := srv.Addr(); a != nil {
			addr = a.String()
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}
	if addr == "" {
		return fail("server never bound")
	}

	if err := smokeWorkload(addr); err != nil {
		return fail("%v", err)
	}

	if err := srv.Close(); err != nil {
		return fail("close: %v", err)
	}
	if err := <-done; err != nil && err != netfront.ErrServerClosed {
		return fail("serve: %v", err)
	}
	// Connection-scratch hygiene: after a clean shutdown every borrowed
	// op and buffer has been returned — a leak here means a code path
	// dropped a pooled object on an error or shutdown race.
	for _, ps := range pool.Snapshot() {
		if ps.Name != "netfront.op" && ps.Name != "netfront.buf" {
			continue
		}
		if got := ps.Hits + ps.Misses + ps.Oversize; got != ps.Returned {
			return fail("pool %s leaked: hits+misses+oversize=%d returned=%d",
				ps.Name, got, ps.Returned)
		}
	}
	c := srv.Counters()
	fmt.Printf("hicampd -smoke: OK (%d gets, %d sets, %d cas, %d deletes, %d windows)\n",
		c.CmdGet, c.CmdSet, c.CmdCas, c.CmdDelete, c.Batches)
	return 0
}

// smokeWorkload exercises the protocol surface over several concurrent
// connections: pipelined multigets, flags round-trips, tenant-prefixed
// keys, a cas merge-rebase, deletes, and stats.
func smokeWorkload(addr string) error {
	// Concurrent mixed traffic first, so the windows aggregate across
	// connections.
	const conns, rounds = 4, 25
	errs := make(chan error, conns)
	for g := 0; g < conns; g++ {
		go func(g int) {
			cl, err := netfront.Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			for r := 0; r < rounds; r++ {
				key := fmt.Sprintf("smoke:%d:%d", g, r)
				val := []byte(fmt.Sprintf("value-%d-%d", g, r))
				if err := cl.Set(key, val); err != nil {
					errs <- fmt.Errorf("conn %d set: %w", g, err)
					return
				}
				got, ok, err := cl.Get(key)
				if err != nil || !ok || string(got) != string(val) {
					errs <- fmt.Errorf("conn %d get %s: ok=%v err=%v", g, key, ok, err)
					return
				}
				if r%5 == 4 {
					if _, err := cl.Delete(key); err != nil {
						errs <- fmt.Errorf("conn %d delete: %w", g, err)
						return
					}
				}
			}
			errs <- cl.Quit()
		}(g)
	}
	for g := 0; g < conns; g++ {
		if err := <-errs; err != nil {
			return err
		}
	}

	// Protocol surface on one connection.
	cl, err := netfront.Dial(addr)
	if err != nil {
		return err
	}
	defer cl.Close()
	for i := 0; i < 8; i++ {
		if err := cl.Set(fmt.Sprintf("tenant-a/k%d", i), []byte(fmt.Sprintf("av%d", i))); err != nil {
			return err
		}
	}
	if err := cl.SendMGet("tenant-a/k0", "tenant-a/k3", "smoke:none", "tenant-a/k7"); err != nil {
		return err
	}
	if err := cl.Flush(); err != nil {
		return err
	}
	vs, err := cl.ReadValues()
	if err != nil {
		return err
	}
	if len(vs) != 3 {
		return fmt.Errorf("mget: %d values, want 3 (miss excluded)", len(vs))
	}

	// cas: stale token with a disjoint interleaved write rebases to
	// STORED; a same-key overwrite is a true conflict and answers EXISTS.
	if err := cl.Set("cas/target", []byte("v0")); err != nil {
		return err
	}
	v, ok, err := cl.Gets("cas/target")
	if err != nil || !ok {
		return fmt.Errorf("gets: ok=%v err=%v", ok, err)
	}
	if err := cl.Set("cas/other", []byte("interleaved")); err != nil {
		return err
	}
	if rep, err := cl.Cas("cas/target", []byte("v1"), v.Cas); err != nil || rep != "STORED" {
		return fmt.Errorf("cas rebase: rep=%q err=%v", rep, err)
	}
	if rep, err := cl.Cas("cas/target", []byte("v2"), v.Cas); err != nil || rep != "EXISTS" {
		return fmt.Errorf("stale cas on overwritten key: rep=%q err=%v", rep, err)
	}

	stats, err := cl.Stats()
	if err != nil {
		return err
	}
	for _, k := range []string{"cmd_get", "cmd_set", "hicamp_dram_accesses", "hicamp_live_lines"} {
		if _, ok := stats[k]; !ok {
			return fmt.Errorf("stats: missing %s", k)
		}
	}
	return cl.Quit()
}
