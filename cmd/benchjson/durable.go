package main

import (
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/kvstore"
)

// Durable pairs (PR 10). Unlike the bulk pipelines, the axis that moves
// here is wall-clock against stable storage: group commit shares fsyncs
// between concurrent acked writers, and checkpoints bound how much log
// a cold start replays. DRAM columns are near-zero by design — journal
// appends are host I/O, and recovery reinstalls lines without simulated
// memory accounting.

// durableDir creates a temp data directory; the closure's server owns
// it for one run.
func durableDir() string {
	dir, err := os.MkdirTemp("", "benchjson-durable-*")
	if err != nil {
		panic(err)
	}
	return dir
}

// durableGroupCommit: the same number of acked sets, per-write fsync
// vs shared group commits. The baseline is one writer acking each set
// before issuing the next — every ack is its own fsync, the classic
// write-through server. The candidate spreads the ops across 8
// concurrent writers under a bounded flush window, so one fsync
// acknowledges every writer that landed in the window; no writer ever
// blocks another's journal append.
func durableGroupCommit() pair {
	const totalOps = 192
	extra := map[string]float64{}
	run := func(writers int, window time.Duration, side string) func() uint64 {
		perWriter := totalOps / writers
		return func() uint64 {
			dir := durableDir()
			defer os.RemoveAll(dir)
			srv, err := kvstore.NewHicampServerOpts(core.TestConfig(), kvstore.ServerOptions{
				DataDir: dir, FlushWindow: window,
			})
			if err != nil {
				panic(err)
			}
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < perWriter; i++ {
						key := []byte(fmt.Sprintf("w%02d-k%04d", w, i))
						val := []byte(fmt.Sprintf("durably acked value %04d of writer %02d", i, w))
						if err := srv.Set(key, val); err != nil {
							panic(err)
						}
					}
				}(w)
			}
			wg.Wait()
			ds := srv.DurableStats()
			extra[side+"_fsyncs"] = float64(ds.Fsyncs)
			extra[side+"_max_group"] = float64(ds.MaxGroupSize)
			if err := srv.Close(); err != nil {
				panic(err)
			}
			return dramTotal(srv.Heap.M)
		}
	}
	return pair{
		name:       "durable_group_commit",
		baseline:   "serial writer, one fsync per acked set",
		candidate:  "8 writers sharing group commits (500us window)",
		reps:       3,
		concurrent: true,
		extra:      extra,
		base:       run(1, time.Nanosecond, "baseline"),
		cand:       run(8, 500*time.Microsecond, "candidate"),
	}
}

// durableColdRecovery: the same final state recovered cold, once from a
// full log replay (no checkpoint) and once from a checkpoint plus a
// short tail. Extras carry the isolated recovery time reported by the
// durable layer; the wall-clock column includes the identical build on
// both sides.
func durableColdRecovery() pair {
	const keys, tail = 1200, 100
	extra := map[string]float64{}
	run := func(checkpoint bool, side string) func() uint64 {
		return func() uint64 {
			dir := durableDir()
			defer os.RemoveAll(dir)
			open := func() *kvstore.HicampServer {
				srv, err := kvstore.NewHicampServerOpts(core.TestConfig(),
					kvstore.ServerOptions{DataDir: dir})
				if err != nil {
					panic(err)
				}
				return srv
			}
			srv := open()
			write := func(lo, hi int) {
				var b kvstore.Batch
				for i := lo; i < hi; i++ {
					b = b.Set([]byte(fmt.Sprintf("rk-%06d", i)),
						[]byte(fmt.Sprintf("replayable payload %06d with a short body", i)))
				}
				if err := srv.Write(b); err != nil {
					panic(err)
				}
			}
			write(0, keys-tail)
			if checkpoint {
				if err := srv.Checkpoint(); err != nil {
					panic(err)
				}
			}
			write(keys-tail, keys)
			if err := srv.Close(); err != nil {
				panic(err)
			}
			srv = open()
			ds := srv.DurableStats()
			extra[side+"_recovery_ms"] = float64(ds.RecoveryTime.Microseconds()) / 1000
			extra[side+"_replayed_records"] = float64(ds.ReplayedRecords)
			extra[side+"_recovered_lines"] = float64(ds.RecoveredLines)
			if err := srv.Close(); err != nil {
				panic(err)
			}
			return dramTotal(srv.Heap.M)
		}
	}
	return pair{
		name:      "durable_cold_recovery",
		baseline:  "full log replay (no checkpoint)",
		candidate: "checkpoint + log tail",
		reps:      3,
		extra:     extra,
		base:      run(false, "baseline"),
		cand:      run(true, "candidate"),
	}
}
