// Command benchjson measures the bulk segment pipelines — construction
// (PR 2), the read/gather path (PR 3), the streaming scan/diff path
// (PR 4), the wave-ordered bulk write path (PR 5), the wave-structured
// merge rebase engine (PR 6), all running over the bucketed scratch
// pools (PR 7), the memcached network front end's cross-connection
// batch aggregation (PR 8), and the content-defined chunked ingest
// path with its warm chunk→PLID memo (PR 9) — against their
// line-at-a-time or per-request baselines, plus the durable tier's
// group-commit and checkpoint-bounded-recovery pairs (PR 10), and
// writes the comparison as machine-readable JSON (BENCH_PR10.json in
// the repo root).
// Each pair is run at GOMAXPROCS 1 and 4 and reports three axes:
//
//   - wall-clock (minimum over interleaved repetitions, fresh machine per
//     repetition), the host-software cost of driving the simulated memory
//     system;
//   - simulated DRAM accesses (store Stats.Total after a cache flush),
//     the architectural metric the paper's evaluation is built on. This
//     axis is deterministic per workload; and
//   - host allocations (the -benchmem axis: mallocs and bytes per run,
//     from runtime.MemStats deltas around the final repetition), the
//     metric the PR 7 scratch pooling moves.
//
// The axes move independently: batching amortizes host-side locks and
// commits (wall-clock), memoization avoids simulated lookup traffic
// (DRAM) at the price of bookkeeping the host must execute, and pooling
// removes the bookkeeping's allocation cost.
//
//	go run ./cmd/benchjson -o BENCH_PR10.json
//
// -skip drops named pairs (comma-separated), which is how earlier
// BENCH_PR*.json files are regenerated without the pairs that did not
// exist yet (e.g. -skip net_pipelined_multiget,net_mixed_rw,... for
// the PR 7 file).
package main

import (
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"repro/internal/chunker"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/experiments"
	"repro/internal/hds"
	"repro/internal/kvstore"
	"repro/internal/merge"
	"repro/internal/segmap"
	"repro/internal/segment"
	"repro/internal/spmv"
	"repro/internal/vmhost"
	"repro/internal/word"
)

// Result is one baseline/candidate pair at one GOMAXPROCS setting.
type Result struct {
	Name        string `json:"name"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	Baseline    string `json:"baseline"`
	Candidate   string `json:"candidate"`
	Reps        int    `json:"reps"`
	BaselineNs  int64  `json:"baseline_ns_op"`
	CandidateNs int64  `json:"candidate_ns_op"`
	// Speedup is wall-clock: baseline time over candidate time.
	Speedup float64 `json:"speedup"`
	// Simulated DRAM accesses (store Stats.Total) for one run of each
	// side, and their ratio (baseline over candidate; >1 means the bulk
	// path touches simulated DRAM less).
	BaselineDRAM  uint64  `json:"baseline_dram_accesses"`
	CandidateDRAM uint64  `json:"candidate_dram_accesses"`
	DRAMRatio     float64 `json:"dram_ratio"`
	// Host allocations for one run of each side (the -benchmem axis:
	// runtime.MemStats Mallocs/TotalAlloc deltas around the final
	// repetition, after the pools are warm) and the malloc ratio
	// (baseline over candidate; >1 means the bulk path allocates less).
	BaselineAllocs  uint64  `json:"baseline_allocs_op"`
	CandidateAllocs uint64  `json:"candidate_allocs_op"`
	BaselineBytes   uint64  `json:"baseline_bytes_op"`
	CandidateBytes  uint64  `json:"candidate_bytes_op"`
	AllocRatio      float64 `json:"alloc_ratio"`
	// DegradedParallel marks rows measured at a GOMAXPROCS above the
	// container's CPU count: the wall-clock column then measures
	// oversubscription, not parallel speedup, and should not be compared
	// against runs on wider hosts.
	DegradedParallel bool `json:"degraded_parallel,omitempty"`
	// Extra carries pair-specific counters (e.g. the diff scan's sub-DAG
	// skip telemetry).
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Report is the file layout of the BENCH_PR*.json files.
type Report struct {
	Description string `json:"description"`
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	NumCPU      int    `json:"num_cpu"`
	// GOMAXPROCS is the process default at startup; each Result also
	// records the setting it ran under.
	GOMAXPROCS int      `json:"gomaxprocs"`
	Results    []Result `json:"results"`
}

// pair is one baseline/candidate comparison. The closures run one full
// workload on a fresh machine and return its simulated DRAM-access total.
type pair struct {
	name      string
	baseline  string
	candidate string
	reps      int
	base      func() uint64
	cand      func() uint64
	// extra, when non-nil, is filled by the closures with pair-specific
	// counters and copied onto the Result.
	extra map[string]float64
	// concurrent marks pairs whose workload is many concurrent
	// goroutines (the network pairs): on a host without real parallelism
	// every run oversubscribes, so the degraded_parallel tag applies at
	// any GOMAXPROCS.
	concurrent bool
}

func main() {
	out := flag.String("o", "BENCH_PR10.json", "output file")
	only := flag.String("only", "", "run only the pair with this name")
	skip := flag.String("skip", "", "comma-separated pair names to drop (for regenerating earlier BENCH_PR*.json files)")
	desc := flag.String("desc", "", "override the report description (set when regenerating an earlier file)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the measured runs")
	flag.Parse()

	pairs := []pair{
		buildRandom(),
		buildCorpus(),
		ingestVMs(),
		ingestVMsNoCache(),
		loadMap(),
		parallelBuild(),
		multiGet(),
		spmvGather(),
		storeScan(),
		diffScan(),
		writeWave(),
		bulkUpdate(),
		mergeRebase(),
		mapContention(),
		netPipelinedMultiget(),
		netMixedRW(),
		chunkedIngestShifted(),
		chunkedReingestWarm(),
		durableGroupCommit(),
		durableColdRecovery(),
	}

	if *only != "" {
		var kept []pair
		for _, p := range pairs {
			if p.name == *only {
				kept = append(kept, p)
			}
		}
		pairs = kept
	}
	if *skip != "" {
		drop := make(map[string]bool)
		for _, n := range strings.Split(*skip, ",") {
			drop[strings.TrimSpace(n)] = true
		}
		var kept []pair
		for _, p := range pairs {
			if !drop[p.name] {
				kept = append(kept, p)
			}
		}
		pairs = kept
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		pprof.StartCPUProfile(f)
		defer pprof.StopCPUProfile()
	}

	rep := Report{
		Description: "Bulk segment pipelines vs line-at-a-time baselines: " +
			"batched+memoized construction (build/ingest/load pairs), the " +
			"level-order bulk read path (multi-get and SpMV gather pairs), " +
			"the streaming scan pipeline (full-store scan and PLID-equality " +
			"snapshot diff pairs), the wave-ordered bulk write path " +
			"(scattered-update wave commit and 4096-key map update pairs), " +
			"and the wave-structured merge rebase (recursive vs level-order " +
			"three-way merge, and stale-snapshot contention where plain-CAS " +
			"replay is the baseline and MCAS merge rebase the candidate; " +
			"its extras pin DRAM/commit flat across a 16x segment-size " +
			"ratio), plus the loopback memcached front end where naive " +
			"per-request dispatch is the baseline and cross-connection " +
			"batch aggregation the candidate (extras carry the measured-" +
			"window rps and p99 per side and the rps ratio at 64 " +
			"connections), and the content-defined chunked ingest path " +
			"where aligned per-document BuildBytes is the baseline and the " +
			"chunker's Gear-CDC ingest the candidate over a shifted near-" +
			"duplicate corpus (extras carry the resident unique-line " +
			"footprints and their ratio), with a second pair isolating the " +
			"warm chunk->PLID memo (cold re-ingest of the variants as " +
			"baseline, memo-warm re-ingest as candidate), and the durable " +
			"tier where per-write fsync is the baseline and the bounded " +
			"flush window's group commit the candidate for 8 concurrent " +
			"acked writers (extras carry fsync counts and max group " +
			"size), with a second pair recovering the same store cold " +
			"from a full log replay (baseline) vs checkpoint + tail " +
			"(candidate; extras carry the isolated recovery times and " +
			"replayed-record counts). " +
			"Wall-clock is min over interleaved reps " +
			"with a fresh machine per rep; DRAM accesses are the simulated " +
			"store totals (deterministic per workload); allocs/bytes per op " +
			"are MemStats deltas on the final (pool-warm) rep. Rows with " +
			"degraded_parallel ran at a GOMAXPROCS above the container's " +
			"CPU count.",
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	if *desc != "" {
		rep.Description = *desc
	}
	for _, procs := range []int{1, 4} {
		prev := runtime.GOMAXPROCS(procs)
		for _, p := range pairs {
			r := measure(p, procs)
			rep.Results = append(rep.Results, r)
			fmt.Printf("%-28s procs=%d  %8.1fms vs %8.1fms  %.2fx wall  %.2fx dram  %.2fx allocs\n",
				p.name, procs,
				float64(r.BaselineNs)/1e6, float64(r.CandidateNs)/1e6,
				r.Speedup, r.DRAMRatio, r.AllocRatio)
		}
		runtime.GOMAXPROCS(prev)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}

// measure interleaves baseline and candidate repetitions (base, cand,
// base, cand, ...) with a GC before each timing, so slow drift — heap
// left by earlier pairs, scheduler weather — perturbs both sides alike
// instead of whichever ran second. Wall-clock is the per-side minimum;
// the DRAM totals are deterministic, so the last repetition's values
// stand for all of them. The allocation axis is taken on the final
// repetition only: by then the scratch pools are warm, so the deltas
// measure steady state rather than freelist fill.
func measure(p pair, procs int) Result {
	r := Result{
		Name: p.name, GOMAXPROCS: procs,
		Baseline: p.baseline, Candidate: p.candidate, Reps: p.reps,
		BaselineNs: 1<<63 - 1, CandidateNs: 1<<63 - 1,
		DegradedParallel: procs > runtime.NumCPU() ||
			(p.concurrent && runtime.NumCPU() < 2),
	}
	// Pairs accumulate extras (max-rps tracking and the like) into one
	// shared map across repetitions; start each GOMAXPROCS setting from
	// a clean slate so a row never reports another setting's maxima.
	clear(p.extra)
	for i := 0; i < p.reps; i++ {
		last := i == p.reps-1
		runtime.GC()
		start := time.Now()
		r.BaselineDRAM, r.BaselineAllocs, r.BaselineBytes = counted(p.base, last)
		if d := time.Since(start).Nanoseconds(); d < r.BaselineNs {
			r.BaselineNs = d
		}
		runtime.GC()
		start = time.Now()
		r.CandidateDRAM, r.CandidateAllocs, r.CandidateBytes = counted(p.cand, last)
		if d := time.Since(start).Nanoseconds(); d < r.CandidateNs {
			r.CandidateNs = d
		}
	}
	r.Speedup = float64(r.BaselineNs) / float64(r.CandidateNs)
	if r.CandidateDRAM != 0 {
		r.DRAMRatio = float64(r.BaselineDRAM) / float64(r.CandidateDRAM)
	}
	if r.CandidateAllocs != 0 {
		r.AllocRatio = float64(r.BaselineAllocs) / float64(r.CandidateAllocs)
	}
	if p.extra != nil {
		r.Extra = make(map[string]float64, len(p.extra))
		for k, v := range p.extra {
			r.Extra[k] = v
		}
	}
	return r
}

// counted runs one side's closure; on the final repetition it also
// reads the runtime.MemStats malloc counters around the run. The stats
// read costs a stop-the-world pair, so non-final repetitions (whose
// minimum sets the wall-clock column) skip it.
func counted(fn func() uint64, withAllocs bool) (dram, allocs, bytes uint64) {
	if !withAllocs {
		return fn(), 0, 0
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	dram = fn()
	runtime.ReadMemStats(&after)
	return dram, after.Mallocs - before.Mallocs, after.TotalAlloc - before.TotalAlloc
}

// dramTotal flushes the LLC and returns the machine's simulated
// DRAM-access total.
func dramTotal(m *core.Machine) uint64 {
	m.FlushCache()
	return m.Stats().Store.Total()
}

// randWords fills n words from a seeded xorshift stream: fresh content,
// no cross-build redundancy — the bulk path's worst case.
func randWords(n int, seed uint64) []uint64 {
	ws := make([]uint64, n)
	x := seed*2654435761 + 1
	for i := range ws {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		ws[i] = x
	}
	return ws
}

// packLE mirrors the segment package's byte packing for the serial
// baseline (BuildBytes itself routes through the bulk path).
func packLE(b []byte) []uint64 {
	n := (len(b) + 7) / 8
	ws := make([]uint64, n)
	full := len(b) / 8
	for i := 0; i < full; i++ {
		ws[i] = binary.LittleEndian.Uint64(b[i*8:])
	}
	if full < n {
		var v uint64
		for k := full * 8; k < len(b); k++ {
			v |= uint64(b[k]) << (8 * (k - full*8))
		}
		ws[full] = v
	}
	return ws
}

func buildRandom() pair {
	const n = 65536
	return pair{
		name:      "build_random_words65536",
		baseline:  "segment.BuildWordsSerial",
		candidate: "segment.BuildWords (bulk)",
		reps:      3,
		base: func() uint64 {
			m := core.NewMachine(core.DefaultConfig(16))
			s := segment.BuildWordsSerial(m, randWords(n, 1), nil)
			segment.ReleaseSeg(m, s)
			return dramTotal(m)
		},
		cand: func() uint64 {
			m := core.NewMachine(core.DefaultConfig(16))
			s := segment.BuildWords(m, randWords(n, 1), nil)
			segment.ReleaseSeg(m, s)
			return dramTotal(m)
		},
	}
}

func buildCorpus() pair {
	c := datagen.HTMLCorpus("benchjson", 96, 4096, 11)
	return pair{
		name:      "build_corpus_html96x4k",
		baseline:  "per-item BuildWordsSerial",
		candidate: "Corpus.BuildSegments (shared Builder)",
		reps:      3,
		base: func() uint64 {
			m := core.NewMachine(core.DefaultConfig(16))
			for _, it := range c.Items {
				s := segment.BuildWordsSerial(m, packLE(it), nil)
				segment.ReleaseSeg(m, s)
			}
			return dramTotal(m)
		},
		cand: func() uint64 {
			m := core.NewMachine(core.DefaultConfig(16))
			for _, s := range c.BuildSegments(m) {
				segment.ReleaseSeg(m, s)
			}
			return dramTotal(m)
		},
	}
}

// tileImages synthesizes two full VMmark tiles (every class, two
// instances each — ~10 MB of image bytes), once, up front.
func tileImages() [][]byte {
	var images [][]byte
	for _, c := range vmhost.Classes() {
		for inst := 0; inst < 2; inst++ {
			img := make([]byte, 0, c.Pages*vmhost.PageBytes)
			vmhost.SynthesizeVM(c, inst, func(page []byte) {
				img = append(img, page...)
			})
			images = append(images, img)
		}
	}
	return images
}

func ingestVMs() pair {
	// Two full VMmark tiles resident at once (the Figure 9/10 scenario):
	// the ~10 MB working set exceeds the 4 MB LLC, so the serial path pays
	// capacity misses where the Builder's memo keeps hitting. Both sides
	// build from the same pre-synthesized bytes and keep every VM resident
	// until the end (as a host does), then power them all off.
	images := tileImages()
	return pair{
		name:      "vmhost_ingest_2tiles",
		baseline:  "per-image BuildWordsSerial, VMs resident",
		candidate: "vmhost.Host.IngestImage (shared Builder)",
		reps:      3,
		base: func() uint64 {
			m := core.NewMachine(core.DefaultConfig(64))
			segs := make([]segment.Seg, 0, len(images))
			for _, img := range images {
				segs = append(segs, segment.BuildWordsSerial(m, packLE(img), nil))
			}
			for _, s := range segs {
				segment.ReleaseSeg(m, s)
			}
			return dramTotal(m)
		},
		cand: func() uint64 {
			m := core.NewMachine(core.DefaultConfig(64))
			h := vmhost.NewHost(m)
			for _, img := range images {
				h.IngestImage(img)
			}
			h.Close()
			return dramTotal(m)
		},
	}
}

// ingestVMsNoCache is the same two-tile ingest under the repo's no-LLC
// ablation (BenchmarkAblationCache's "nocache" configuration): with no
// content-addressed cache in front of the store, every serial LookupLine
// of a duplicated page pays a full signature-scan lookup, while the
// Builder's memo resolves it with one revalidating RC bump — the DRAM
// column shows the traffic the memo avoids.
func ingestVMsNoCache() pair {
	images := tileImages()
	cfg := core.Config{LineBytes: 64, BucketBits: 20, DataWays: 12, CacheLines: 0}
	return pair{
		name:      "vmhost_ingest_2tiles_nocache",
		baseline:  "per-image BuildWordsSerial, no LLC",
		candidate: "vmhost.Host.IngestImage, no LLC",
		reps:      3,
		base: func() uint64 {
			m := core.NewMachine(cfg)
			segs := make([]segment.Seg, 0, len(images))
			for _, img := range images {
				segs = append(segs, segment.BuildWordsSerial(m, packLE(img), nil))
			}
			for _, s := range segs {
				segment.ReleaseSeg(m, s)
			}
			return dramTotal(m)
		},
		cand: func() uint64 {
			m := core.NewMachine(cfg)
			h := vmhost.NewHost(m)
			for _, img := range images {
				h.IngestImage(img)
			}
			h.Close()
			return dramTotal(m)
		},
	}
}

func loadMap() pair {
	pairs := make([]hds.Pair, 4096)
	for i := range pairs {
		pairs[i] = hds.Pair{
			Key:   []byte(fmt.Sprintf("bulk:key:%06d", i)),
			Value: []byte(fmt.Sprintf("value payload %d with a fairly typical short body of text", i)),
		}
	}
	return pair{
		name:      "map_load_4096pairs",
		baseline:  "per-pair Map.Set",
		candidate: "hds.Map.Apply (bulk load)",
		reps:      5,
		base: func() uint64 {
			h := hds.NewHeap(core.DefaultConfig(16))
			mp := hds.NewMap(h)
			for _, p := range pairs {
				k, v := hds.NewString(h, p.Key), hds.NewString(h, p.Value)
				if err := mp.Set(k, v); err != nil {
					panic(err)
				}
				k.Release(h)
				v.Release(h)
			}
			return dramTotal(h.M)
		},
		cand: func() uint64 {
			h := hds.NewHeap(core.DefaultConfig(16))
			if err := hds.NewMap(h).Apply(pairs, hds.ApplyOptions{}); err != nil {
				panic(err)
			}
			return dramTotal(h.M)
		},
	}
}

// multiGet measures the PR 3 tentpole on its memcached shape: a
// 4096-key GET batch from the repo's power-law request trace, resolved
// one GetVia at a time versus one batched Read. Popular keys repeat within
// the batch at reuse distances far beyond a busy server's cache slice
// (the LLC here is scaled to 256 KB against an ~8 MB corpus), so the
// serial side re-misses every repeat while the bulk side's waves
// request each distinct line exactly once — repeated values, map
// interiors shared between slots, fragments shared between
// deduplicated items.
func multiGet() pair {
	const items, batchKeys = 4096, 4096
	c := datagen.HTMLCorpus("benchjson-mget", items, 2048, 21)
	trace := datagen.RequestTrace(items, 3*batchKeys, 10, 33)
	keys := make([][]byte, 0, batchKeys)
	for _, r := range trace {
		if r.Get {
			keys = append(keys, []byte(c.Keys[r.Key]))
			if len(keys) == batchKeys {
				break
			}
		}
	}
	cfg := core.Config{
		LineBytes: 16, BucketBits: 20, DataWays: 12,
		CacheLines: (256 << 10) / 16, CacheWays: 16,
	}
	run := func(batched bool) func() uint64 {
		return func() uint64 {
			srv := kvstore.NewHicampServer(cfg)
			if err := srv.Write(loadBatch(c.Keys, c.Items)); err != nil {
				panic(err)
			}
			srv.Heap.M.FlushCache()
			srv.Heap.M.ResetStats()
			if batched {
				srv.Read(getBatch(keys))
			} else {
				reader, err := srv.OpenReader()
				if err != nil {
					panic(err)
				}
				for _, k := range keys {
					srv.GetVia(reader, k)
				}
				reader.Close()
			}
			return dramTotal(srv.Heap.M)
		}
	}
	return pair{
		name:      "kv_multiget_4096keys",
		baseline:  "per-key HicampServer.GetVia",
		candidate: "HicampServer.Read (bulk gather)",
		reps:      3,
		base:      run(false),
		cand:      run(true),
	}
}

// spmvGather compares the depth-first SpMV kernel (per-node Children
// calls, per-word re-walks of the x segment) against the level-order
// gather kernel. The tree builds once per run; the warm multiply repeats
// so the kernel dominates the timing, mirroring steady-state SpMV.
func spmvGather() pair {
	mat := spmv.FEM2D(48)
	cfg := core.DefaultConfig(16)
	const iters = 8
	x := make([]float64, mat.Cols)
	rs := randWords(mat.Cols, 31)
	for i := range x {
		x[i] = float64(rs[i]%1000)/500 - 1
	}
	run := func(gather bool) func() uint64 {
		return func() uint64 {
			mach := core.NewMachine(cfg)
			q := spmv.BuildQTS(mach, mat)
			xseg := spmv.BuildXSegment(mach, x)
			mul := q.MulVec
			if gather {
				mul = q.MulVecGather
			}
			mul(mach, xseg, mat.Cols) // cold pass: warm the LLC
			mach.FlushCache()
			mach.ResetStats()
			for i := 0; i < iters; i++ {
				mul(mach, xseg, mat.Cols)
			}
			q.Release(mach)
			segment.ReleaseSeg(mach, xseg)
			return dramTotal(mach)
		}
	}
	return pair{
		name:      "spmv_gather_fem2d48x8",
		baseline:  "QTS.MulVec (depth-first)",
		candidate: "QTS.MulVecGather (level-order waves)",
		reps:      3,
		base:      run(false),
		cand:      run(true),
	}
}

// byteSegHeight is heightForBytes: the height of a byte string's segment.
func byteSegHeight(arity int, n uint64) int {
	w := (n + 7) / 8
	if w == 0 {
		w = 1
	}
	return segment.HeightFor(arity, w)
}

// scanCorpus is the shared-structure store the scan pairs walk: 65536
// distinct keys whose values cycle through a pool of 1024 distinct ~1 KB
// HTML documents. Dedup collapses the pool to one copy in the store, but
// the scan's key-PLID order is a random permutation of insertion order,
// so a serial walk revisits each pool line at reuse distances far beyond
// the 256 KB LLC — the memcached shape where many keys map to repeated
// page/fragment content.
func scanCorpus(name string, seed int64) ([]string, [][]byte) {
	pool := datagen.HTMLCorpus(name, 1024, 1024, seed)
	const items = 65536
	keys := make([]string, items)
	values := make([][]byte, items)
	for i := range keys {
		keys[i] = fmt.Sprintf("%s:key:%06d", name, i)
		values[i] = pool.Items[i%len(pool.Items)]
	}
	return keys, values
}

// scanServer loads the scan corpus into a fresh HicampServer under a
// 256 KB LLC and opens a clean measurement window.
func scanServer(keys []string, values [][]byte) *kvstore.HicampServer {
	cfg := core.Config{
		LineBytes: 16, BucketBits: 20, DataWays: 12,
		CacheLines: (256 << 10) / 16, CacheWays: 16,
	}
	srv := kvstore.NewHicampServer(cfg)
	if err := srv.Write(loadBatch(keys, values)); err != nil {
		panic(err)
	}
	srv.Heap.M.FlushCache()
	srv.Heap.M.ResetStats()
	return srv
}

// loadBatch builds a set-only batch from parallel key/value slices.
func loadBatch(keys []string, values [][]byte) kvstore.Batch {
	b := make(kvstore.Batch, len(keys))
	for i := range keys {
		b[i] = kvstore.KV{Key: []byte(keys[i]), Value: values[i]}
	}
	return b
}

// getBatch builds a read batch over keys.
func getBatch(keys [][]byte) kvstore.Batch {
	b := make(kvstore.Batch, len(keys))
	for i := range keys {
		b[i] = kvstore.KV{Key: keys[i]}
	}
	return b
}

// serialStoreDump is the pre-PR 4 full-store dump: one NextNonZero
// descent per slot, four point reads per binding, one serial ReadBytes
// per key and per value. Returns a sink so nothing is elided.
func serialStoreDump(srv *kvstore.HicampServer) int {
	m := srv.Heap.M
	seg, err := srv.Map().Snapshot()
	if err != nil {
		panic(err)
	}
	defer segment.ReleaseSeg(m, seg)
	arity := m.LineWords()
	sink := 0
	// Map slot layout: [value root, value len+1, key root, key len].
	for idx := uint64(0); ; {
		nz, ok := segment.NextNonZero(m, seg, idx)
		if !ok {
			break
		}
		slot := nz - nz%4
		if lenPlus, _ := segment.ReadWord(m, seg, slot+1); lenPlus != 0 {
			vroot, _ := segment.ReadWord(m, seg, slot)
			kroot, _ := segment.ReadWord(m, seg, slot+2)
			klen, _ := segment.ReadWord(m, seg, slot+3)
			kseg := segment.Seg{Root: word.PLID(kroot), Height: byteSegHeight(arity, klen)}
			vseg := segment.Seg{Root: word.PLID(vroot), Height: byteSegHeight(arity, lenPlus-1)}
			sink += len(segment.ReadBytes(m, kseg, 0, klen))
			sink += len(segment.ReadBytes(m, vseg, 0, lenPlus-1))
		}
		idx = slot + 4
	}
	return sink
}

// storeScan measures the PR 4 tentpole at full-store scale: dumping the
// 65536-key scan corpus, whose value working set dwarfs the 256 KB LLC.
// The serial walk re-descends the map DAG per slot and re-misses the
// pool's shared lines on nearly every binding; the streaming scan's
// batched gathers fetch each distinct line once per wave, so repeated
// values cost DRAM once per batch instead of once per key.
func storeScan() pair {
	keys, values := scanCorpus("benchjson-scan", 41)
	return pair{
		name:      "kv_store_scan_65536keys",
		baseline:  "serial iterator walk (NextNonZero + point reads)",
		candidate: "HicampServer.Scan (streamed waves)",
		reps:      2,
		base: func() uint64 {
			srv := scanServer(keys, values)
			if serialStoreDump(srv) == 0 {
				panic("empty dump")
			}
			return dramTotal(srv.Heap.M)
		},
		cand: func() uint64 {
			srv := scanServer(keys, values)
			sink := 0
			if err := srv.Scan(func(k, v []byte) bool {
				sink += len(k) + len(v)
				return true
			}); err != nil {
				panic(err)
			}
			if sink == 0 {
				panic("empty scan")
			}
			return dramTotal(srv.Heap.M)
		},
	}
}

// diffScan measures the PLID-equality diff: two snapshots of a 65536-key
// store differing in 256 keys (<1%). The baseline answers "what changed"
// the conventional way — two full serial walks, word-compared; the
// candidate co-walks the snapshots with DiffSnapshots, skipping identical
// sub-DAGs, so its line reads stay proportional to the changed paths.
// The skip telemetry lands in the result's extra map.
func diffScan() pair {
	const changes = 256
	keys, values := scanCorpus("benchjson-diff", 43)
	setup := func() (*kvstore.HicampServer, segment.Seg, segment.Seg) {
		srv := scanServer(keys, values)
		old, err := srv.Map().Snapshot()
		if err != nil {
			panic(err)
		}
		for i := 0; i < changes; i++ {
			k := keys[(i*251)%len(keys)]
			if err := srv.Set([]byte(k), []byte(fmt.Sprintf("mutated payload %d for %s", i, k))); err != nil {
				panic(err)
			}
		}
		cur, err := srv.Map().Snapshot()
		if err != nil {
			panic(err)
		}
		srv.Heap.M.FlushCache()
		srv.Heap.M.ResetStats()
		return srv, old, cur
	}
	serialWords := func(m *core.Machine, seg segment.Seg) map[uint64]uint64 {
		out := make(map[uint64]uint64)
		for idx := uint64(0); ; {
			nz, ok := segment.NextNonZero(m, seg, idx)
			if !ok {
				break
			}
			w, _ := segment.ReadWord(m, seg, nz)
			out[nz] = w
			idx = nz + 1
		}
		return out
	}
	extra := map[string]float64{}
	return pair{
		name:      "kv_diff_65536keys_256changed",
		baseline:  "two full serial walks, word-compared",
		candidate: "hds.DiffSnapshots (PLID-equality skips)",
		reps:      2,
		extra:     extra,
		base: func() uint64 {
			srv, old, cur := setup()
			m := srv.Heap.M
			aw := serialWords(m, old)
			bw := serialWords(m, cur)
			diffs := 0
			for idx, w := range bw {
				if aw[idx] != w {
					diffs++
				}
			}
			for idx := range aw {
				if _, ok := bw[idx]; !ok {
					diffs++
				}
			}
			if diffs == 0 {
				panic("serial diff found no changes")
			}
			segment.ReleaseSeg(m, old)
			segment.ReleaseSeg(m, cur)
			return dramTotal(m)
		},
		cand: func() uint64 {
			srv, old, cur := setup()
			deltas := 0
			st := hds.DiffSnapshots(srv.Heap, old, cur, func(d hds.MapDelta) bool {
				deltas++
				return true
			})
			if deltas == 0 {
				panic("diff scan found no changes")
			}
			extra["delta_entries"] = float64(deltas)
			extra["subdag_skips"] = float64(st.SubDAGSkips)
			extra["skipped_words"] = float64(st.SkippedWords)
			extra["diff_line_reads"] = float64(st.LineReads)
			extra["diff_words"] = float64(st.DiffWords)
			segment.ReleaseSeg(srv.Heap.M, old)
			segment.ReleaseSeg(srv.Heap.M, cur)
			return dramTotal(srv.Heap.M)
		},
	}
}

func parallelBuild() pair {
	const n, workers = 16384, 4
	run := func(build func(m *core.Machine, ws []uint64) segment.Seg) func() uint64 {
		return func() uint64 {
			m := core.NewMachine(core.DefaultConfig(16))
			var wg sync.WaitGroup
			for g := 0; g < workers; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					s := build(m, randWords(n, uint64(g+1)<<32|7))
					segment.ReleaseSeg(m, s)
				}(g)
			}
			wg.Wait()
			return dramTotal(m)
		}
	}
	return pair{
		name:      "parallel_build_4x16384",
		baseline:  "4 goroutines x BuildWordsSerial",
		candidate: "4 goroutines x BuildWords (bulk)",
		reps:      3,
		base: run(func(m *core.Machine, ws []uint64) segment.Seg {
			return segment.BuildWordsSerial(m, ws, nil)
		}),
		cand: run(func(m *core.Machine, ws []uint64) segment.Seg {
			return segment.BuildWords(m, ws, nil)
		}),
	}
}

// writeWave measures the PR 5 tentpole directly: 4096 scattered updates
// to a 65536-word segment, committed one root-to-leaf path rebuild at a
// time (one Txn per update, the paper's per-store commit discipline)
// versus one bottom-up wave commit that canonicalizes each DAG level in
// a single batch lookup and passes untouched sub-DAGs through by PLID.
func writeWave() pair {
	const words, updates = 65536, 4096
	baseWords := randWords(words, 41)
	upWords := randWords(2*updates, 42)
	mkUps := func() []segment.Update {
		ups := make([]segment.Update, updates)
		for i := range ups {
			ups[i] = segment.Update{
				Idx: upWords[2*i] % words,
				W:   upWords[2*i+1] | 1,
			}
		}
		return ups
	}
	ex := map[string]float64{}
	return pair{
		name:      "segment_writebatch_4096upd",
		baseline:  "per-update Txn commit (path rebuild each)",
		candidate: "segment.WriteBatch (one wave commit)",
		reps:      3,
		extra:     ex,
		base: func() uint64 {
			m := core.NewMachine(core.DefaultConfig(16))
			s := segment.BuildWords(m, baseWords, nil)
			m.FlushCache()
			m.ResetStats()
			for _, u := range mkUps() {
				tx := segment.NewTxn(m, s)
				tx.WriteWord(u.Idx, u.W, u.T)
				next := tx.Commit()
				segment.ReleaseSeg(m, s)
				s = next
			}
			segment.ReleaseSeg(m, s)
			return dramTotal(m)
		},
		cand: func() uint64 {
			m := core.NewMachine(core.DefaultConfig(16))
			s := segment.BuildWords(m, baseWords, nil)
			m.FlushCache()
			m.ResetStats()
			next, st := segment.WriteBatch(m, s, mkUps())
			segment.ReleaseSeg(m, s)
			segment.ReleaseSeg(m, next)
			ex["wave_levels"] = float64(st.WaveLevels)
			ex["sibling_coalesced"] = float64(st.SiblingCoalesced)
			ex["paths_rebuilt"] = float64(st.PathsRebuilt)
			ex["pass_through"] = float64(st.PassThrough)
			return dramTotal(m)
		},
	}
}

// bulkUpdate is the application-level shape of the acceptance pin: a
// populated 4096-key map whose every value is replaced, one Set commit
// per key versus one Apply wave commit riding a single CAS attempt.
func bulkUpdate() pair {
	const n = 4096
	oldPairs := make([]hds.Pair, n)
	newPairs := make([]hds.Pair, n)
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("upd:key:%06d", i))
		oldPairs[i] = hds.Pair{Key: key, Value: []byte(fmt.Sprintf("generation zero payload %d", i))}
		newPairs[i] = hds.Pair{Key: key, Value: []byte(fmt.Sprintf("generation one payload %d rewritten", i))}
	}
	preload := func() (*hds.Heap, *hds.Map) {
		h := hds.NewHeap(core.DefaultConfig(16))
		mp := hds.NewMap(h)
		if err := mp.Apply(oldPairs, hds.ApplyOptions{}); err != nil {
			panic(err)
		}
		h.M.FlushCache()
		h.M.ResetStats()
		return h, mp
	}
	ex := map[string]float64{}
	return pair{
		name:      "map_bulkupdate_4096keys",
		baseline:  "per-key Map.Set",
		candidate: "hds.Map.Apply (wave commit)",
		reps:      3,
		extra:     ex,
		base: func() uint64 {
			h, mp := preload()
			for _, p := range newPairs {
				k, v := hds.NewString(h, p.Key), hds.NewString(h, p.Value)
				if err := mp.Set(k, v); err != nil {
					panic(err)
				}
				k.Release(h)
				v.Release(h)
			}
			return dramTotal(h.M)
		},
		cand: func() uint64 {
			h, mp := preload()
			var st segment.WriteStats
			if err := mp.Apply(newPairs, hds.ApplyOptions{Stats: &st}); err != nil {
				panic(err)
			}
			ex["wave_levels"] = float64(st.WaveLevels)
			ex["sibling_coalesced"] = float64(st.SiblingCoalesced)
			ex["paths_rebuilt"] = float64(st.PathsRebuilt)
			ex["pass_through"] = float64(st.PassThrough)
			return dramTotal(h.M)
		},
	}
}

// mergeRebase compares the recursive reference three-way merge with the
// wave-structured rebase engine on a full-depth workload: mod and cur
// each update adjacent words of the same 64 leaf lines of a 65536-word
// segment, so the merge cannot resolve by sub-DAG skipping near the root
// and must co-walk every changed path to the leaves. Twin machines with
// identical preload histories (PLIDs are allocation-order-dependent) and
// an ample LLC, so the DRAM axis is the walk itself, not capacity misses.
func mergeRebase() pair {
	const n, k = 65536, 64
	ampleCfg := core.Config{
		LineBytes: 64, BucketBits: 16, DataWays: 12,
		CacheLines: 1 << 15, CacheWays: 8,
	}
	mkTriple := func(m *core.Machine) (orig, mod, cur segment.Seg) {
		orig = segment.BuildWords(m, randWords(n, 61), nil)
		vals := randWords(2*k, 62)
		ups := func(off int) []segment.Update {
			out := make([]segment.Update, k)
			for i := range out {
				out[i] = segment.Update{
					Idx: uint64((n/k)*i + off),
					W:   vals[2*i+off] | 1,
					T:   word.TagRaw,
				}
			}
			return out
		}
		mod, _ = segment.WriteBatch(m, orig, ups(0))
		cur, _ = segment.WriteBatch(m, orig, ups(1))
		// Exclude the preload's deferred writebacks from the measured window.
		m.FlushCache()
		m.ResetStats()
		return orig, mod, cur
	}
	ex := map[string]float64{}
	return pair{
		name:      "merge_rebase_64paths",
		baseline:  "recursive MergeSerial (per-node reads)",
		candidate: "wave Merge (level-order batched co-walk)",
		reps:      3,
		extra:     ex,
		base: func() uint64 {
			m := core.NewMachine(ampleCfg)
			orig, mod, cur := mkTriple(m)
			res, err := merge.MergeSerial(m, orig, mod, cur, nil)
			if err != nil {
				panic(err)
			}
			for _, s := range []segment.Seg{res, orig, mod, cur} {
				segment.ReleaseSeg(m, s)
			}
			return dramTotal(m)
		},
		cand: func() uint64 {
			m := core.NewMachine(ampleCfg)
			orig, mod, cur := mkTriple(m)
			var st merge.Stats
			res, err := merge.Merge(m, orig, mod, cur, &st)
			if err != nil {
				panic(err)
			}
			for _, s := range []segment.Seg{res, orig, mod, cur} {
				segment.ReleaseSeg(m, s)
			}
			ex["wave_levels"] = float64(st.WaveLevels)
			ex["subdag_skips"] = float64(st.SubDAGSkips)
			ex["nodes_walked"] = float64(st.NodesWalked)
			ex["line_reads"] = float64(st.LineReads)
			ex["lookups"] = float64(st.Lookups)
			return dramTotal(m)
		},
	}
}

// netPair builds one loopback network pair: the same workload driven
// through the memcached front end with per-request dispatch (baseline)
// versus cross-connection batch aggregation (candidate). The wall-clock
// columns include each run's protocol preload, so the acceptance metric
// is the measured-window rps in the extras: rps_naive, rps_pipelined
// (best over the repetitions, each paired with its p99), and rps_ratio.
// 64 connections is the acceptance scale; on a host without real
// parallelism the rows carry degraded_parallel.
func netPair(name string, cfg experiments.NetloadConfig) pair {
	ex := map[string]float64{}
	run := func(aggregate bool) experiments.NetloadRow {
		c := cfg
		c.Aggregate = aggregate
		row, err := experiments.RunNetloadWorkload(c)
		if err != nil {
			panic(err)
		}
		return row
	}
	return pair{
		name:       name,
		baseline:   "per-request dispatch (Aggregate=false)",
		candidate:  "cross-connection batch aggregation (flush windows)",
		reps:       2,
		extra:      ex,
		concurrent: true,
		base: func() uint64 {
			row := run(false)
			if row.RPS > ex["rps_naive"] {
				ex["rps_naive"] = row.RPS
				ex["p99_us_naive"] = row.P99us
			}
			return row.DRAM
		},
		cand: func() uint64 {
			row := run(true)
			if row.RPS > ex["rps_pipelined"] {
				ex["rps_pipelined"] = row.RPS
				ex["p99_us_pipelined"] = row.P99us
			}
			ex["rps_ratio"] = ex["rps_pipelined"] / ex["rps_naive"]
			ex["batch_windows"] = float64(row.Batches)
			ex["avg_batch_ops"] = row.AvgBatch
			ex["conns"] = float64(row.Conns)
			return row.DRAM
		},
	}
}

// netPipelinedMultiget is the PR 8 tentpole's read shape: 64 pipelined
// connections issuing 4-key gets. Aggregation resolves every in-flight
// get of a flush window through one pinned snapshot and one gather wave,
// so the map's root path and shared interior lines are fetched once per
// window instead of once per request.
func netPipelinedMultiget() pair {
	return netPair("net_pipelined_multiget", experiments.NetloadConfig{
		Conns: 64, Depth: 4, Rounds: 30, KeysPerGet: 4,
		Preload: 2048, ValueBytes: 64,
	})
}

// netMixedRW adds the write side: every fourth request is a set, so
// each flush window also coalesces its writes into one Apply wave
// commit — one version published per window instead of per set.
func netMixedRW() pair {
	return netPair("net_mixed_rw", experiments.NetloadConfig{
		Conns: 64, Depth: 4, Rounds: 30, KeysPerGet: 1, SetEvery: 4,
		Preload: 2048, ValueBytes: 64,
	})
}

// mapContention pins the Sec 2.4/3.4 contention claim as a benchmark
// pair: deterministic stale-snapshot rounds of disjoint 4-word commits
// on one shared merge-update segment — every worker builds against the
// round's snapshot and the versions publish sequentially, so all but the
// first publish per round is stale. The baseline replays each lost
// commit from scratch against the committed version (the plain-CAS retry
// an application without merge support must run); the candidate rebases
// the stale version through the wave merge in one MCAS. Extras record
// DRAM per successful commit at 4096 and 65536 words: flat across the
// 16x size ratio, since merged commits walk changed paths only.
func mapContention() pair {
	const workers, rounds, perCommit = 4, 12, 4
	run := func(words uint64, useMerge bool) (dram, commits, conflicts uint64) {
		h := hds.NewHeap(core.Config{
			LineBytes: 64, BucketBits: 16, DataWays: 12,
			CacheLines: 1 << 15, CacheWays: 8,
		})
		ws := make([]uint64, words)
		for i := range ws {
			ws[i] = uint64(i%251) + 1
		}
		base := segment.BuildWords(h.M, ws, nil)
		vsid := h.SM.Create(segmap.Entry{
			Seg: base, Size: words * 8, Flags: segmap.FlagMergeUpdate,
		})
		// Exclude the preload's deferred writebacks from the measured window.
		h.M.FlushCache()
		h.M.ResetStats()
		stride := words / uint64(workers*rounds*perCommit)
		if stride == 0 {
			stride = 1
		}
		for r := 0; r < rounds; r++ {
			e, err := h.SM.Load(vsid)
			if err != nil {
				panic(err)
			}
			for g := 0; g < workers; g++ {
				ups := make([]segment.Update, perCommit)
				for j := range ups {
					seq := uint64((g*rounds+r)*perCommit + j)
					ups[j] = segment.Update{
						Idx: (seq * stride) % words,
						W:   seq + 1000,
						T:   word.TagRaw,
					}
				}
				if useMerge {
					next, _ := segment.WriteBatch(h.M, e.Seg, ups)
					ok, err := merge.MCAS(h.M, h.SM, vsid, e.Seg, next, words*8, nil)
					if err != nil || !ok {
						panic(fmt.Sprintf("mcas ok=%v err=%v", ok, err))
					}
				} else {
					snap, owned := e.Seg, false
					for {
						next, _ := segment.WriteBatch(h.M, snap, ups)
						ok := h.SM.CAS(vsid, snap, next, words*8)
						if owned {
							segment.ReleaseSeg(h.M, snap)
						}
						if ok {
							break
						}
						segment.ReleaseSeg(h.M, next)
						cur, err := h.SM.Load(vsid)
						if err != nil {
							panic(err)
						}
						snap, owned = cur.Seg, true
					}
				}
			}
			segment.ReleaseSeg(h.M, e.Seg)
		}
		h.M.FlushCache()
		okCAS, failCAS := h.SM.CASStats()
		return h.M.Stats().Store.Total(), okCAS, failCAS
	}
	ex := map[string]float64{}
	// The overlap-degradation curve rides along as extras, computed once
	// here (not in the measured closures, whose wall-clock it would
	// swamp): per overlap fraction, the replays forced by true conflicts
	// and the resulting commit attempts per key — the deterministic
	// inverse-throughput measure (keys/s on a 1-CPU container is noise).
	if _, res, err := experiments.RunContention(experiments.ScaleTest); err == nil {
		for _, row := range res.Overlap {
			tag := fmt.Sprintf("%.0f", row.Overlap*100)
			ex["replays_overlap_"+tag] = float64(row.Replays)
			ex["attempts_per_key_overlap_"+tag] =
				1 + float64(row.Replays)/float64(row.Keys)
		}
	}
	return pair{
		name:      "map_contention_stale_rounds",
		baseline:  "plain CAS, full replay per lost publish",
		candidate: "merge.MCAS wave rebase",
		reps:      3,
		extra:     ex,
		base: func() uint64 {
			d, _, _ := run(1<<16, false)
			return d
		},
		cand: func() uint64 {
			d, commits, conflicts := run(1<<16, true)
			dSmall, cSmall, _ := run(1<<12, true)
			ex["commits"] = float64(commits)
			ex["stale_publishes_rebased"] = float64(conflicts)
			ex["dram_per_commit_65536w"] = float64(d) / float64(commits)
			ex["dram_per_commit_4096w"] = float64(dSmall) / float64(cSmall)
			return d
		},
	}
}

// shiftedCorpus is the PR 9 measurement corpus: unpadded near-duplicate
// HTML documents (6 bases, 4 edited variants each — the revision-
// history shape) whose byte-local edits shift everything after them off
// line alignment.
func shiftedCorpus() *datagen.ShiftedCorpus {
	return datagen.NearDuplicateCorpus("benchjson-shifted", 6, 4, 4, 32<<10, 97)
}

// chunkedIngestShifted is the PR 9 tentpole's dedup claim: on shifted
// near-duplicate documents, aligned per-document segments re-
// canonicalize everything after each edit while content-defined chunks
// re-resolve to their existing sub-DAGs. Both sides build every item
// through bulk waves and keep everything resident; the extras carry the
// resident unique-line footprints, whose ratio is the acceptance bar
// (>= 2x lower for chunked).
func chunkedIngestShifted() pair {
	c := shiftedCorpus()
	items := c.AllItems()
	ex := map[string]float64{}
	return pair{
		name:      "chunked_ingest_shifted",
		baseline:  "aligned per-doc Builder.BuildBytes",
		candidate: "chunker.Ingestor (Gear CDC + chunk index)",
		reps:      3,
		extra:     ex,
		base: func() uint64 {
			m := core.NewMachine(core.DefaultConfig(16))
			b := segment.NewBuilder(m, 0)
			for _, it := range items {
				b.BuildBytes(it)
			}
			b.Close()
			ex["aligned_lines"] = float64(m.LiveLines())
			return dramTotal(m)
		},
		cand: func() uint64 {
			m := core.NewMachine(core.DefaultConfig(16))
			g := chunker.NewIngestor(m, chunker.Config{})
			for _, it := range items {
				g.IngestBytes(it)
			}
			st := g.Stats()
			g.Close()
			ex["chunked_lines"] = float64(m.LiveLines())
			if ex["chunked_lines"] > 0 {
				ex["footprint_ratio"] = ex["aligned_lines"] / ex["chunked_lines"]
			}
			ex["memo_hit_rate"] = st.HitRate()
			ex["chunks"] = float64(st.Chunks)
			return dramTotal(m)
		},
	}
}

// chunkedReingestWarm isolates the warm chunk->PLID memo: both sides
// ingest the bases (identical machine history), then ingest the edited
// variants — the baseline with the chunk memo disabled (every chunk
// re-canonicalizes through per-level Builder lookups), the candidate
// with the Ingestor still warm from the bases (an unchanged chunk costs
// one revalidating reference-count touch instead of per-line lookups).
// Only the variant pass is in the DRAM window, and the machine has an
// ample LLC (the merge_rebase discipline) so the DRAM axis is the
// memo's traffic saving, not cache capacity misses.
func chunkedReingestWarm() pair {
	ampleCfg := core.Config{
		LineBytes: 16, BucketBits: 16, DataWays: 12,
		CacheLines: 1 << 17, CacheWays: 8,
	}
	c := shiftedCorpus()
	ex := map[string]float64{}
	run := func(warm bool) uint64 {
		m := core.NewMachine(ampleCfg)
		g := chunker.NewIngestor(m, chunker.Config{})
		if !warm {
			g.SetMemoLimit(0, 0)
		}
		for _, it := range c.Bases {
			g.IngestBytes(it)
		}
		pre := g.Stats()
		m.FlushCache()
		m.ResetStats()
		for _, it := range c.Variants {
			g.IngestBytes(it)
		}
		if warm {
			st := g.Stats()
			if n := st.Chunks - pre.Chunks; n > 0 {
				ex["variant_memo_hit_rate"] = float64(st.MemoHits-pre.MemoHits) / float64(n)
			}
			ex["variant_chunk_rebuilds"] = float64(st.ChunkBuilds - pre.ChunkBuilds)
		}
		g.Close()
		return dramTotal(m)
	}
	return pair{
		name:      "chunked_reingest_warm",
		baseline:  "variant ingest, chunk memo disabled",
		candidate: "variant ingest, memo warm from the bases",
		reps:      3,
		extra:     ex,
		base:      func() uint64 { return run(false) },
		cand:      func() uint64 { return run(true) },
	}
}
