// Package repro is a library-quality reproduction of "HICAMP:
// Architectural Support for Efficient Concurrency-safe Shared Structured
// Data Access" (Cheriton, Firoozshahian, Solomatnikov, Stevenson, Azizi;
// ASPLOS 2012).
//
// The implementation lives under internal/: the deduplicating line store
// (internal/store), the HICAMP cache and the conventional baseline
// hierarchy (internal/cachesim), canonical segment DAGs with path and
// data compaction (internal/segment), the virtual segment map
// (internal/segmap), iterator registers (internal/iterreg), merge-update
// (internal/merge), the composed machine (internal/core), the §4
// programming model (internal/hds), and the three application studies
// (internal/kvstore, internal/spmv, internal/vmhost). Every table and
// figure of the paper's evaluation regenerates through
// internal/experiments and cmd/hicampbench; the benchmarks in this
// package exercise the same paths under go test -bench.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// substitutions, and EXPERIMENTS.md for paper-vs-measured results.
package repro
