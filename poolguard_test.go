package repro

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The wave engines' scratch discipline (DESIGN.md "Scratch pooling"):
// recurring wave buffers come from internal/pool, never from ad-hoc
// caches, and the known hidden allocators stay off the hot paths. Two
// greppable invariants lock that in:
//
//   - sync.Pool appears nowhere outside internal/pool: a private pool
//     would bypass the bucketed stats (hits/misses/oversize) the bench
//     and server surfaces report, and sync.Pool's GC draining breaks
//     the deterministic accounting the pinning tests rely on. (The
//     internal/pool freelists deliberately do not use sync.Pool.)
//   - the wave-engine files use only the allocation-free forms of the
//     compact/inline decoders (DecodeCompactInto / UnpackInlineInto)
//     and of slice sorting (slices.SortFunc; sort.Slice's reflection
//     header allocates per call).
var waveEngineFiles = []string{
	filepath.Join("internal", "segment", "builder.go"),
	filepath.Join("internal", "segment", "read_bulk.go"),
	filepath.Join("internal", "segment", "scan.go"),
	filepath.Join("internal", "segment", "scan_parallel.go"),
	filepath.Join("internal", "segment", "write_batch.go"),
	filepath.Join("internal", "segment", "canon_batch.go"),
	filepath.Join("internal", "merge", "merge.go"),
	filepath.Join("internal", "iterreg", "iterreg.go"),
}

func TestNoAdHocScratchInWaveEngines(t *testing.T) {
	allocRE := regexp.MustCompile(`word\.(DecodeCompact|UnpackInline)\(|sort\.Slice\(|sync\.Pool`)
	for _, path := range waveEngineFiles {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		for i, line := range strings.Split(string(src), "\n") {
			if allocRE.MatchString(line) {
				t.Errorf("%s:%d: allocating form in wave engine %q — use the Into variant / slices.SortFunc / internal/pool",
					path, i+1, strings.TrimSpace(line))
			}
		}
	}
}

func TestNoSyncPoolOutsidePoolPackage(t *testing.T) {
	poolDir := filepath.Join("internal", "pool")
	re := regexp.MustCompile(`sync\.Pool`)
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" || path == poolDir {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || path == "poolguard_test.go" {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(src), "\n") {
			if re.MatchString(line) {
				t.Errorf("%s:%d: sync.Pool outside internal/pool %q — use the bucketed pools so stats stay observable",
					path, i+1, strings.TrimSpace(line))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("walk: %v", err)
	}
}
